#include "chain/block_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "common/codec.h"
#include "obs/events.h"
#include "testing/crash_point.h"

namespace harmony {

namespace {

// "HBCL" + the record codec version (kLogV1..kLogV4, chain/block.h). v1
// logs are headerless; Open() detects and migrates them too.
constexpr uint32_t kLogMagic = 0x4C434248u;
constexpr uint64_t kLogHeaderBytes = 8;

/// Reads one record (length, payload, CRC) at `off`. Returns false on a
/// short read or CRC mismatch — a torn or corrupt tail from the scanner's
/// point of view. `*rec_len` is the full on-disk record size.
bool ReadRecordAt(int fd, off_t off, std::string* payload, size_t* rec_len) {
  uint32_t len = 0;
  if (::pread(fd, &len, 4, off) != 4) return false;
  // An absurd length (flipped bits, or a non-log file probed as v1) must
  // fail the read, not size a multi-gigabyte allocation.
  if (len > (256u << 20)) return false;
  payload->assign(len, '\0');
  if (::pread(fd, payload->data(), len, off + 4) != static_cast<ssize_t>(len)) {
    return false;
  }
  uint32_t crc = 0;
  if (::pread(fd, &crc, 4, off + 4 + len) != 4) return false;
  if (Crc32(*payload) != crc) return false;
  *rec_len = 8 + static_cast<size_t>(len);
  return true;
}

}  // namespace

BlockStore::BlockStore(std::string path, uint64_t sync_latency_us,
                       Compression compression)
    : path_(std::move(path)),
      sync_latency_us_(sync_latency_us),
      compression_(compression) {}

BlockStore::~BlockStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlockStore::Open() {
  // A crash between Migrate()'s temp write and its rename leaves the temp
  // behind (the original log is intact and the migration simply redoes);
  // drop the stale temp so interrupted migrations leave no debris. Same
  // story for TruncateBefore's temp: the original log survives a crash
  // before the rename, and the next checkpoint simply truncates again.
  ::unlink((path_ + ".migrate").c_str());
  ::unlink((path_ + ".truncate").c_str());
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return Status::IOError("open block log");

  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < static_cast<off_t>(kLogHeaderBytes)) {
    // Fresh log (or a crash tore the header before any record could ever
    // have been written): stamp the current format.
    if (::ftruncate(fd_, 0) != 0) return Status::IOError("truncate block log");
    uint32_t header[2] = {kLogMagic, kLogVersion};
    if (::pwrite(fd_, header, kLogHeaderBytes, 0) !=
        static_cast<ssize_t>(kLogHeaderBytes)) {
      return Status::IOError("write block log header");
    }
  } else {
    uint32_t header[2] = {0, 0};
    if (::pread(fd_, header, kLogHeaderBytes, 0) !=
        static_cast<ssize_t>(kLogHeaderBytes)) {
      return Status::IOError("read block log header");
    }
    if (header[0] != kLogMagic) {
      // No header at all: possibly a v1 seed log, whose file begins with a
      // record length. Migrate() validates that reading at least one v1
      // record works before committing to the interpretation.
      return Migrate(kLogV1);
    }
    if (header[1] >= kLogV2 && header[1] < kLogV4) {
      return Migrate(header[1]);
    }
    if (header[1] != kLogV4) {
      return Status::NotSupported("block log format v" +
                                  std::to_string(header[1]) +
                                  " (this build writes v" +
                                  std::to_string(kLogVersion) + "): " + path_);
    }
  }
  return ScanAndRepair();
}

Status BlockStore::Migrate(uint32_t from_version) {
  // Stream the old log record-at-a-time into a v4 temp file, so migrating
  // a multi-GB chain costs O(largest block) memory, not O(chain). A torn
  // tail stops the copy exactly where ScanAndRepair would have truncated.
  // Write-temp + rename: a crash mid-migration leaves the original log
  // untouched and the next Open() simply migrates again.
  const std::string tmp = path_ + ".migrate";
  int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) return Status::IOError("open migration temp");
  uint32_t header[2] = {kLogMagic, kLogVersion};
  bool ok = ::pwrite(tfd, header, kLogHeaderBytes, 0) ==
            static_cast<ssize_t>(kLogHeaderBytes);
  uint64_t woff = kLogHeaderBytes;
  size_t migrated = 0;
  off_t off = from_version == kLogV1 ? 0 : static_cast<off_t>(kLogHeaderBytes);
  std::string payload;
  size_t rec_len = 0;
  while (ok && ReadRecordAt(fd_, off, &payload, &rec_len)) {
    Block b;
    if (!BlockCodec::Decode(payload, &b, from_version).ok()) break;
    off += static_cast<off_t>(rec_len);
    const std::string p = BlockCodec::EncodeRecordV4(b, compression_);
    std::string rec;
    rec.reserve(p.size() + 8);
    codec::AppendU32(&rec, static_cast<uint32_t>(p.size()));
    rec.append(p);
    codec::AppendU32(&rec, Crc32(p));
    ok = ::pwrite(tfd, rec.data(), rec.size(), static_cast<off_t>(woff)) ==
         static_cast<ssize_t>(rec.size());
    woff += rec.size();
    migrated++;
  }
  if (from_version == kLogV1 && migrated == 0) {
    // The magic check failed AND the headerless interpretation yields
    // nothing — this is not a block log of any version we know.
    ::close(tfd);
    ::unlink(tmp.c_str());
    return Status::NotSupported(
        "block log has no recognizable format (magic/header mismatch): " +
        path_);
  }
  if (ok) ok = ::fsync(tfd) == 0;
  ::close(tfd);
  if (!ok) return Status::IOError("write migrated block log");
  ::close(fd_);
  fd_ = -1;
  HARMONY_CRASH_POINT("chain.migrate.before_rename");
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename migrated block log");
  }
  HARMONY_CRASH_POINT("chain.migrate.after_rename");
  if (events_ != nullptr) {
    events_->Emit(obs::EventSeverity::kInfo, obs::EventCode::kLogMigrate,
                  "v" + std::to_string(from_version) + " -> v" +
                      std::to_string(kLogVersion) + ", " +
                      std::to_string(migrated) + " blocks: " + path_);
  }
  // Reopen: the file is v4 now, so this recursion terminates immediately.
  return Open();
}

Status BlockStore::ScanAndRepair() {
  append_offset_ = kLogHeaderBytes;
  last_block_id_ = 0;
  first_block_id_ = 0;
  num_blocks_ = 0;
  off_t off = kLogHeaderBytes;
  std::string payload;
  size_t rec_len = 0;
  while (ReadRecordAt(fd_, off, &payload, &rec_len)) {
    Block b;
    if (!BlockCodec::Decode(payload, &b, kLogV4).ok()) break;
    if (num_blocks_ == 0) first_block_id_ = b.header.block_id;
    last_block_id_ = b.header.block_id;
    last_record_offset_ = static_cast<uint64_t>(off);
    num_blocks_++;
    off += static_cast<off_t>(rec_len);
  }
  append_offset_ = static_cast<uint64_t>(off);
  // Drop any torn tail so future appends start from a clean record boundary.
  if (::ftruncate(fd_, off) != 0) return Status::IOError("truncate block log");
  return Status::OK();
}

Status BlockStore::Append(const Block& b) {
  size_t raw_section = 0;
  Compression used = Compression::kNone;
  const std::string payload =
      BlockCodec::EncodeRecordV4(b, compression_, &raw_section, &used);
  std::string rec;
  rec.reserve(payload.size() + 8);
  codec::AppendU32(&rec, static_cast<uint32_t>(payload.size()));
  rec.append(payload);
  codec::AppendU32(&rec, Crc32(payload));
  raw_bytes_.fetch_add(raw_section, std::memory_order_relaxed);
  disk_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
  if (used != Compression::kNone) {
    compressed_blocks_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t off;
  {
    // Strict ordering: block n appends only after block n-1 (fresh stores
    // have last_block_id_ == 0 and block ids start at 1).
    std::unique_lock<std::mutex> lk(mu_);
    order_cv_.wait(lk,
                   [&] { return last_block_id_ + 1 == b.header.block_id; });
    off = append_offset_;
    append_offset_ += rec.size();
    last_record_offset_ = off;
    if (num_blocks_ == 0) first_block_id_ = b.header.block_id;
    last_block_id_ = b.header.block_id;
    num_blocks_++;
    writes_in_flight_++;
  }
  HARMONY_CRASH_POINT("chain.append.before_write");
  if (testing::g_crash_points_armed.load(std::memory_order_relaxed)) {
    double frac = 1.0;
    if (testing::CrashPointTorn("chain.append.torn_write", &frac)) {
      // Persist a prefix of the record, then die: the torn tail the open
      // scan must detect and truncate.
      const size_t n = static_cast<size_t>(frac * rec.size());
      (void)::pwrite(fd_, rec.data(), n, static_cast<off_t>(off));
      testing::CrashNow();
    }
  }
  const bool wrote =
      ::pwrite(fd_, rec.data(), rec.size(), static_cast<off_t>(off)) ==
      static_cast<ssize_t>(rec.size());
  HARMONY_CRASH_POINT("chain.append.after_write");
  {
    std::lock_guard<std::mutex> lk(mu_);
    writes_in_flight_--;
  }
  if (!wrote) {
    order_cv_.notify_all();
    return Status::IOError("append block");
  }
  SimulateDelayMicros(sync_latency_us_);  // modelled group-commit flush
  // One wake-up for both waiter kinds (successor appends, ReadLast); kept
  // after the delay so consecutive flushes stay serialized as modelled.
  order_cv_.notify_all();
  return Status::OK();
}

Status BlockStore::ResetTail(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (num_blocks_ != 0) {
    if (last_block_id_ >= id) return Status::OK();
    return Status::InvalidArgument(
        "ResetTail(" + std::to_string(id) + ") over a log ending at " +
        std::to_string(last_block_id_));
  }
  // An empty log can still be positioned past `id` (everything through the
  // old tip was truncated away); never rewind.
  last_block_id_ = std::max(last_block_id_, id);
  order_cv_.notify_all();
  return Status::OK();
}

Status BlockStore::TruncateBefore(BlockId keep_from) {
  std::unique_lock<std::mutex> lk(mu_);
  // The rewrite reads the live file and swaps fd_; wait out reserved
  // records so every scanned offset is fully on disk. New appends queue on
  // mu_ for the duration.
  order_cv_.wait(lk, [&] { return writes_in_flight_ == 0; });
  if (num_blocks_ == 0 || keep_from <= first_block_id_) return Status::OK();

  const std::string tmp = path_ + ".truncate";
  int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) return Status::IOError("open truncation temp");
  uint32_t header[2] = {kLogMagic, kLogVersion};
  bool ok = ::pwrite(tfd, header, kLogHeaderBytes, 0) ==
            static_cast<ssize_t>(kLogHeaderBytes);

  // Dropped records go to the archive *before* the rename commits the
  // rewrite: a crash in between redoes the truncation and re-archives the
  // same records, which the archive reader dedups — duplicates are
  // recoverable, silently lost records are not.
  int afd = -1;
  off_t aoff = 0;
  if (archive_truncated_) {
    afd = ::open((path_ + ".archive").c_str(), O_RDWR | O_CREAT, 0644);
    if (afd < 0) {
      ::close(tfd);
      ::unlink(tmp.c_str());
      return Status::IOError("open truncation archive");
    }
    const off_t asz = ::lseek(afd, 0, SEEK_END);
    aoff = static_cast<off_t>(kLogHeaderBytes);
    if (asz < static_cast<off_t>(kLogHeaderBytes)) {
      ok = ok && ::ftruncate(afd, 0) == 0 &&
           ::pwrite(afd, header, kLogHeaderBytes, 0) ==
               static_cast<ssize_t>(kLogHeaderBytes);
    } else {
      // A crash mid-archive-append can leave a torn tail; appending after
      // it would strand everything behind the tear. Scan to the last whole
      // record and drop the rest (read-side dedup absorbs the re-archive).
      std::string apayload;
      size_t arec_len = 0;
      while (ReadRecordAt(afd, aoff, &apayload, &arec_len)) {
        aoff += static_cast<off_t>(arec_len);
      }
      ok = ok && ::ftruncate(afd, aoff) == 0;
    }
  }

  uint64_t woff = kLogHeaderBytes;
  uint64_t tip_off = 0;
  BlockId first_kept = 0;
  size_t kept = 0, dropped = 0;
  off_t off = static_cast<off_t>(kLogHeaderBytes);
  std::string payload;
  size_t rec_len = 0;
  while (ok && static_cast<uint64_t>(off) < append_offset_) {
    if (!ReadRecordAt(fd_, off, &payload, &rec_len)) {
      ok = false;
      break;
    }
    Block b;
    if (!BlockCodec::Decode(payload, &b, kLogV4).ok()) {
      ok = false;
      break;
    }
    // Re-frame the verified payload verbatim (no re-encode): the record is
    // byte-identical in its new home.
    std::string rec;
    rec.reserve(payload.size() + 8);
    codec::AppendU32(&rec, static_cast<uint32_t>(payload.size()));
    rec.append(payload);
    codec::AppendU32(&rec, Crc32(payload));
    if (b.header.block_id < keep_from) {
      if (afd >= 0) {
        ok = ::pwrite(afd, rec.data(), rec.size(), aoff) ==
             static_cast<ssize_t>(rec.size());
        aoff += static_cast<off_t>(rec.size());
      }
      dropped++;
    } else {
      if (kept == 0) first_kept = b.header.block_id;
      tip_off = woff;
      ok = ::pwrite(tfd, rec.data(), rec.size(), static_cast<off_t>(woff)) ==
           static_cast<ssize_t>(rec.size());
      woff += rec.size();
      kept++;
    }
    off += static_cast<off_t>(rec_len);
  }
  if (ok && afd >= 0) ok = ::fsync(afd) == 0;
  if (afd >= 0) ::close(afd);
  if (ok) ok = ::fsync(tfd) == 0;
  ::close(tfd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return Status::IOError("write truncated block log");
  }
  ::close(fd_);
  fd_ = -1;
  HARMONY_CRASH_POINT("chain.truncate.before_rename");
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename truncated block log");
  }
  HARMONY_CRASH_POINT("chain.truncate.after_rename");
  fd_ = ::open(path_.c_str(), O_RDWR, 0644);
  if (fd_ < 0) return Status::IOError("reopen truncated block log");
  append_offset_ = woff;
  last_record_offset_ = tip_off;
  first_block_id_ = first_kept;  // 0 when everything was dropped
  num_blocks_ = kept;
  // last_block_id_ is untouched: the tip (and the strict-append ordering
  // anchored on it) is unaffected by retiring the prefix.
  truncated_blocks_.fetch_add(dropped, std::memory_order_relaxed);
  truncations_.fetch_add(1, std::memory_order_relaxed);
  if (events_ != nullptr) {
    events_->Emit(obs::EventSeverity::kInfo, obs::EventCode::kLogTruncate,
                  "dropped " + std::to_string(dropped) + " blocks below " +
                      std::to_string(keep_from) + ", kept " +
                      std::to_string(kept) + ": " + path_);
  }
  return Status::OK();
}

Status BlockStore::ReadArchivedBlocks(std::vector<Block>* out) {
  out->clear();
  int fd = ::open((path_ + ".archive").c_str(), O_RDONLY);
  if (fd < 0) return Status::OK();  // never archived anything
  off_t off = static_cast<off_t>(kLogHeaderBytes);
  std::string payload;
  size_t rec_len = 0;
  BlockId last_seen = 0;
  while (ReadRecordAt(fd, off, &payload, &rec_len)) {
    Block b;
    if (!BlockCodec::Decode(payload, &b, kLogV4).ok()) break;
    off += static_cast<off_t>(rec_len);
    // Crash-redo duplicates re-archive a prefix already present; the block
    // ids run monotonically within each truncation batch, so a non-
    // increasing id is a replayed record.
    if (b.header.block_id <= last_seen) continue;
    last_seen = b.header.block_id;
    out->push_back(std::move(b));
  }
  ::close(fd);
  return Status::OK();
}

Status BlockStore::ReadBlocksAfter(BlockId after_block,
                                   std::vector<Block>* out) {
  out->clear();
  // Snapshot (fd, end) under the lock and read through a dup: TruncateBefore
  // swaps fd_ for the rewritten file, but the dup keeps the pre-truncation
  // inode alive, so an overlapping scan sees a consistent (old) log instead
  // of a reused descriptor number.
  int fd = -1;
  uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    end = append_offset_;
    fd = fd_ >= 0 ? ::dup(fd_) : -1;
  }
  if (fd < 0) return Status::IOError("block log not open");
  off_t off = kLogHeaderBytes;
  std::string payload;
  size_t rec_len = 0;
  Status result;
  while (static_cast<uint64_t>(off) < end) {
    if (!ReadRecordAt(fd, off, &payload, &rec_len)) {
      result = Status::Corruption("block log record at offset " +
                                  std::to_string(off));
      break;
    }
    Block b;
    result = BlockCodec::Decode(payload, &b, kLogV4);
    if (!result.ok()) break;
    if (b.header.block_id > after_block) {
      out->push_back(std::move(b));
    }
    off += static_cast<off_t>(rec_len);
  }
  ::close(fd);
  return result;
}

Status BlockStore::ReadLast(Block* out) {
  uint64_t off;
  int fd = -1;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (num_blocks_ == 0) return Status::NotFound("empty block log");
    // An Append publishes its offset before its pwrite lands; wait until no
    // record write is in flight so the tip we read is fully on disk.
    order_cv_.wait(lk, [&] { return writes_in_flight_ == 0; });
    off = last_record_offset_;
    fd = fd_ >= 0 ? ::dup(fd_) : -1;  // see ReadBlocksAfter: truncation-safe
  }
  if (fd < 0) return Status::IOError("block log not open");
  std::string payload;
  size_t rec_len = 0;
  const bool ok = ReadRecordAt(fd, static_cast<off_t>(off), &payload, &rec_len);
  ::close(fd);
  if (!ok) return Status::Corruption("block log tip record");
  return BlockCodec::Decode(payload, out, kLogV4);
}

BlockId CheckpointManifest::Read() const {
  FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;
  uint64_t block_id = 0;
  uint32_t crc = 0;
  const bool ok = std::fread(&block_id, 8, 1, f) == 1 &&
                  std::fread(&crc, 4, 1, f) == 1 &&
                  Crc32(&block_id, 8) == crc;
  std::fclose(f);
  return ok ? block_id : 0;
}

Status CheckpointManifest::Write(BlockId block_id) const {
  const std::string tmp = path_ + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open manifest tmp");
  const uint32_t crc = Crc32(&block_id, 8);
  const bool ok = std::fwrite(&block_id, 8, 1, f) == 1 &&
                  std::fwrite(&crc, 4, 1, f) == 1;
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!ok) return Status::IOError("write manifest");
  HARMONY_CRASH_POINT("chain.manifest.before_rename");
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename manifest");
  }
  return Status::OK();
}

bool CheckpointManifest::Exists() const {
  return ::access(path_.c_str(), F_OK) == 0;
}

void CheckpointManifest::RemoveStaleTemp() const {
  ::unlink((path_ + ".tmp").c_str());
}

}  // namespace harmony
