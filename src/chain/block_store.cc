#include "chain/block_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "common/codec.h"

namespace harmony {

namespace {

// "HBCL" + the record codec version. Version 2 added client_id to the
// transaction wire format; version 3 added the priority fee. Version 1 logs
// (pre-header) fail the magic check.
constexpr uint32_t kLogMagic = 0x4C434248u;
constexpr uint32_t kLogVersion = 3;
constexpr uint64_t kLogHeaderBytes = 8;

}  // namespace

BlockStore::BlockStore(std::string path, uint64_t sync_latency_us)
    : path_(std::move(path)), sync_latency_us_(sync_latency_us) {}

BlockStore::~BlockStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlockStore::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return Status::IOError("open block log");

  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < static_cast<off_t>(kLogHeaderBytes)) {
    // Fresh log (or a crash tore the header before any record could ever
    // have been written): stamp the current format.
    if (::ftruncate(fd_, 0) != 0) return Status::IOError("truncate block log");
    uint32_t header[2] = {kLogMagic, kLogVersion};
    if (::pwrite(fd_, header, kLogHeaderBytes, 0) !=
        static_cast<ssize_t>(kLogHeaderBytes)) {
      return Status::IOError("write block log header");
    }
  } else {
    uint32_t header[2] = {0, 0};
    if (::pread(fd_, header, kLogHeaderBytes, 0) !=
        static_cast<ssize_t>(kLogHeaderBytes)) {
      return Status::IOError("read block log header");
    }
    if (header[0] != kLogMagic) {
      return Status::NotSupported(
          "block log has no format header (pre-versioning chain?): " + path_);
    }
    if (header[1] != kLogVersion) {
      return Status::NotSupported("block log format v" +
                                  std::to_string(header[1]) +
                                  " (this build reads v" +
                                  std::to_string(kLogVersion) + "): " + path_);
    }
  }
  return ScanAndRepair();
}

Status BlockStore::ScanAndRepair() {
  append_offset_ = kLogHeaderBytes;
  last_block_id_ = 0;
  num_blocks_ = 0;
  off_t off = kLogHeaderBytes;
  while (true) {
    uint32_t len = 0;
    if (::pread(fd_, &len, 4, off) != 4) break;
    std::string payload(len, '\0');
    if (::pread(fd_, payload.data(), len, off + 4) !=
        static_cast<ssize_t>(len)) {
      break;  // torn tail
    }
    uint32_t crc = 0;
    if (::pread(fd_, &crc, 4, off + 4 + len) != 4) break;
    if (Crc32(payload) != crc) break;  // torn or corrupted tail
    Block b;
    if (!BlockCodec::Decode(payload, &b).ok()) break;
    last_block_id_ = b.header.block_id;
    last_record_offset_ = static_cast<uint64_t>(off);
    num_blocks_++;
    off += 8 + static_cast<off_t>(len);
  }
  append_offset_ = static_cast<uint64_t>(off);
  // Drop any torn tail so future appends start from a clean record boundary.
  if (::ftruncate(fd_, off) != 0) return Status::IOError("truncate block log");
  return Status::OK();
}

Status BlockStore::Append(const Block& b) {
  const std::string payload = BlockCodec::Encode(b);
  std::string rec;
  rec.reserve(payload.size() + 8);
  codec::AppendU32(&rec, static_cast<uint32_t>(payload.size()));
  rec.append(payload);
  codec::AppendU32(&rec, Crc32(payload));

  uint64_t off;
  {
    // Strict ordering: block n appends only after block n-1 (fresh stores
    // have last_block_id_ == 0 and block ids start at 1).
    std::unique_lock<std::mutex> lk(mu_);
    order_cv_.wait(lk,
                   [&] { return last_block_id_ + 1 == b.header.block_id; });
    off = append_offset_;
    append_offset_ += rec.size();
    last_record_offset_ = off;
    last_block_id_ = b.header.block_id;
    num_blocks_++;
    writes_in_flight_++;
  }
  const bool wrote =
      ::pwrite(fd_, rec.data(), rec.size(), static_cast<off_t>(off)) ==
      static_cast<ssize_t>(rec.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    writes_in_flight_--;
  }
  if (!wrote) {
    order_cv_.notify_all();
    return Status::IOError("append block");
  }
  SimulateDelayMicros(sync_latency_us_);  // modelled group-commit flush
  // One wake-up for both waiter kinds (successor appends, ReadLast); kept
  // after the delay so consecutive flushes stay serialized as modelled.
  order_cv_.notify_all();
  return Status::OK();
}

Status BlockStore::ReadBlocksAfter(BlockId after_block,
                                   std::vector<Block>* out) {
  out->clear();
  off_t off = kLogHeaderBytes;
  while (static_cast<uint64_t>(off) < append_offset_) {
    uint32_t len = 0;
    if (::pread(fd_, &len, 4, off) != 4) {
      return Status::Corruption("block log length field");
    }
    std::string payload(len, '\0');
    if (::pread(fd_, payload.data(), len, off + 4) !=
        static_cast<ssize_t>(len)) {
      return Status::Corruption("block log payload");
    }
    uint32_t crc = 0;
    if (::pread(fd_, &crc, 4, off + 4 + len) != 4 || Crc32(payload) != crc) {
      return Status::Corruption("block log crc");
    }
    Block b;
    HARMONY_RETURN_NOT_OK(BlockCodec::Decode(payload, &b));
    if (b.header.block_id > after_block) {
      out->push_back(std::move(b));
    }
    off += 8 + static_cast<off_t>(len);
  }
  return Status::OK();
}

Status BlockStore::ReadLast(Block* out) {
  uint64_t off;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (num_blocks_ == 0) return Status::NotFound("empty block log");
    // An Append publishes its offset before its pwrite lands; wait until no
    // record write is in flight so the tip we read is fully on disk.
    order_cv_.wait(lk, [&] { return writes_in_flight_ == 0; });
    off = last_record_offset_;
  }
  uint32_t len = 0;
  if (::pread(fd_, &len, 4, static_cast<off_t>(off)) != 4) {
    return Status::Corruption("block log length field");
  }
  std::string payload(len, '\0');
  if (::pread(fd_, payload.data(), len, static_cast<off_t>(off + 4)) !=
      static_cast<ssize_t>(len)) {
    return Status::Corruption("block log payload");
  }
  uint32_t crc = 0;
  if (::pread(fd_, &crc, 4, static_cast<off_t>(off + 4 + len)) != 4 ||
      Crc32(payload) != crc) {
    return Status::Corruption("block log crc");
  }
  return BlockCodec::Decode(payload, out);
}

BlockId CheckpointManifest::Read() const {
  FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;
  uint64_t block_id = 0;
  uint32_t crc = 0;
  const bool ok = std::fread(&block_id, 8, 1, f) == 1 &&
                  std::fread(&crc, 4, 1, f) == 1 &&
                  Crc32(&block_id, 8) == crc;
  std::fclose(f);
  return ok ? block_id : 0;
}

Status CheckpointManifest::Write(BlockId block_id) const {
  const std::string tmp = path_ + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open manifest tmp");
  const uint32_t crc = Crc32(&block_id, 8);
  const bool ok = std::fwrite(&block_id, 8, 1, f) == 1 &&
                  std::fwrite(&crc, 4, 1, f) == 1;
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!ok) return Status::IOError("write manifest");
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename manifest");
  }
  return Status::OK();
}

}  // namespace harmony
