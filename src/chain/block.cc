#include "chain/block.h"

#include "common/codec.h"

namespace harmony {

void BlockCodec::EncodeTxn(const TxnRequest& t, std::string* out) {
  codec::AppendU32(out, t.proc_id);
  codec::AppendU64(out, t.client_id);
  codec::AppendU64(out, t.client_seq);
  codec::AppendU64(out, t.submit_time_us);
  codec::AppendU32(out, t.retries);
  codec::AppendU64(out, t.fee);
  codec::AppendU32(out, static_cast<uint32_t>(t.args.ints.size()));
  for (int64_t v : t.args.ints) codec::AppendI64(out, v);
  codec::AppendBytes(out, t.args.blob);
}

bool BlockCodec::DecodeTxn(codec::Reader* r, TxnRequest* out,
                           uint32_t log_version) {
  uint32_t n_ints = 0;
  out->client_id = 0;
  out->fee = 0;
  if (!r->ReadU32(&out->proc_id)) return false;
  if (log_version >= kLogV2 && !r->ReadU64(&out->client_id)) return false;
  if (!r->ReadU64(&out->client_seq) || !r->ReadU64(&out->submit_time_us) ||
      !r->ReadU32(&out->retries)) {
    return false;
  }
  if (log_version >= kLogV3 && !r->ReadU64(&out->fee)) return false;
  if (!r->ReadU32(&n_ints)) return false;
  // Bound the resize by the bytes actually present: a corrupt count must
  // fail the parse, not size a multi-gigabyte allocation.
  if (static_cast<uint64_t>(n_ints) * 8 > r->remaining()) return false;
  out->args.ints.resize(n_ints);
  for (uint32_t i = 0; i < n_ints; i++) {
    if (!r->ReadI64(&out->args.ints[i])) return false;
  }
  return r->ReadBytes(&out->args.blob);
}

std::string BlockCodec::Encode(const Block& b) {
  std::string out;
  codec::AppendU64(&out, b.header.block_id);
  codec::AppendU64(&out, b.header.first_tid);
  codec::AppendU32(&out, b.header.txn_count);
  codec::AppendU64(&out, b.header.order_time_us);
  out.append(reinterpret_cast<const char*>(b.header.prev_hash.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.txn_root.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.block_hash.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.signature.data()), 32);
  for (const TxnRequest& t : b.batch.txns) EncodeTxn(t, &out);
  return out;
}

namespace {

/// Parses `count` transactions laid out per `log_version` into the batch.
Status DecodeTxnSection(codec::Reader* r, uint32_t count,
                        uint32_t log_version, TxnBatch* batch) {
  if (static_cast<uint64_t>(count) * 4 > r->remaining() + 4) {
    // Each txn is at least proc_id + counts (> 4 bytes); a count that the
    // remaining bytes cannot possibly carry must not size the resize below.
    return Status::Corruption("txn count implausible");
  }
  batch->txns.resize(count);
  for (uint32_t i = 0; i < count; i++) {
    if (!BlockCodec::DecodeTxn(r, &batch->txns[i], log_version)) {
      return Status::Corruption("txn truncated");
    }
  }
  return Status::OK();
}

}  // namespace

Status BlockCodec::Decode(std::string_view bytes, Block* out,
                          uint32_t log_version) {
  codec::Reader r(bytes);
  uint64_t block_id = 0, first_tid = 0, order_time = 0;
  uint32_t txn_count = 0;
  if (!r.ReadU64(&block_id) || !r.ReadU64(&first_tid) ||
      !r.ReadU32(&txn_count) || !r.ReadU64(&order_time)) {
    return Status::Corruption("block header truncated");
  }
  out->header.block_id = block_id;
  out->header.first_tid = first_tid;
  out->header.txn_count = txn_count;
  out->header.order_time_us = order_time;
  // Digests are fixed-width raw bytes.
  for (Digest* d : {&out->header.prev_hash, &out->header.txn_root,
                    &out->header.block_hash, &out->header.signature}) {
    for (size_t i = 0; i < 32; i += 8) {
      uint64_t chunk;
      if (!r.ReadU64(&chunk)) return Status::Corruption("digest truncated");
      std::memcpy(d->data() + i, &chunk, 8);
    }
  }
  out->batch.block_id = block_id;
  out->batch.first_tid = first_tid;
  if (log_version < kLogV4) {
    HARMONY_RETURN_NOT_OK(
        DecodeTxnSection(&r, txn_count, log_version, &out->batch));
    if (r.remaining() != 0) return Status::Corruption("trailing block bytes");
    return Status::OK();
  }
  // v4: the txn section rides a compression envelope —
  //   u8 codec, u32 raw_len, u32 stored_len + stored bytes.
  uint8_t codec_byte = 0;
  {
    uint16_t pair = 0;  // Reader has no ReadU8; the codec byte is padded.
    if (!r.ReadU16(&pair)) return Status::Corruption("v4 envelope truncated");
    codec_byte = static_cast<uint8_t>(pair & 0xFF);
    if ((pair >> 8) != 0) return Status::Corruption("v4 envelope padding");
  }
  if (codec_byte > static_cast<uint8_t>(Compression::kHlz)) {
    return Status::Corruption("unknown block compression codec " +
                              std::to_string(codec_byte));
  }
  uint32_t raw_len = 0;
  std::string stored;
  if (!r.ReadU32(&raw_len) || !r.ReadBytes(&stored)) {
    return Status::Corruption("v4 envelope truncated");
  }
  if (r.remaining() != 0) return Status::Corruption("trailing block bytes");
  std::string section;
  HARMONY_RETURN_NOT_OK(DecompressPayload(
      static_cast<Compression>(codec_byte), stored, raw_len, &section));
  codec::Reader sr(section);
  HARMONY_RETURN_NOT_OK(DecodeTxnSection(&sr, txn_count, kLogV3, &out->batch));
  if (sr.remaining() != 0) {
    return Status::Corruption("trailing txn-section bytes");
  }
  return Status::OK();
}

std::string BlockCodec::EncodeRecordV4(const Block& b, Compression codec,
                                       size_t* raw_section_bytes,
                                       Compression* used_codec) {
  std::string out;
  codec::AppendU64(&out, b.header.block_id);
  codec::AppendU64(&out, b.header.first_tid);
  codec::AppendU32(&out, b.header.txn_count);
  codec::AppendU64(&out, b.header.order_time_us);
  out.append(reinterpret_cast<const char*>(b.header.prev_hash.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.txn_root.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.block_hash.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.signature.data()), 32);

  std::string section;
  for (const TxnRequest& t : b.batch.txns) EncodeTxn(t, &section);
  const size_t raw_len = section.size();
  if (raw_section_bytes != nullptr) *raw_section_bytes = raw_len;
  std::string stored;
  if (codec != Compression::kNone) CompressPayload(codec, section, &stored);
  // Per-block fallback: a section compression cannot shrink is stored raw,
  // so a v4 record is never larger than its v3 equivalent plus the 10-byte
  // envelope (u16 codec+pad, u32 raw_len, u32 stored_len).
  if (codec == Compression::kNone || stored.size() >= section.size()) {
    codec = Compression::kNone;
    stored = std::move(section);
  }
  if (used_codec != nullptr) *used_codec = codec;
  codec::AppendU16(&out, static_cast<uint16_t>(codec));  // u8 codec + pad
  codec::AppendU32(&out, static_cast<uint32_t>(raw_len));
  codec::AppendBytes(&out, stored);
  return out;
}

Digest BlockCodec::TxnRoot(const TxnBatch& batch) {
  Sha256 h;
  h.UpdateInt(batch.block_id);
  h.UpdateInt(batch.first_tid);
  std::string buf;
  for (const TxnRequest& t : batch.txns) {
    buf.clear();
    EncodeTxn(t, &buf);
    h.Update(buf);
  }
  return h.Finalize();
}

Digest BlockCodec::HashHeader(const BlockHeader& h) {
  Sha256 s;
  s.UpdateInt(h.block_id);
  s.UpdateInt(h.first_tid);
  s.UpdateInt(h.txn_count);
  s.Update(h.prev_hash.data(), h.prev_hash.size());
  s.Update(h.txn_root.data(), h.txn_root.size());
  return s.Finalize();
}

Block BlockBuilder::Seal(TxnBatch batch, uint64_t order_time_us) {
  Block b;
  b.header.block_id = batch.block_id;
  b.header.first_tid = batch.first_tid;
  b.header.txn_count = static_cast<uint32_t>(batch.txns.size());
  b.header.order_time_us = order_time_us;
  b.header.prev_hash = prev_hash_;
  b.header.txn_root = BlockCodec::TxnRoot(batch);
  b.header.block_hash = BlockCodec::HashHeader(b.header);
  b.header.signature =
      HmacSha256(secret_, b.header.block_hash.data(), b.header.block_hash.size());
  b.batch = std::move(batch);
  prev_hash_ = b.header.block_hash;
  return b;
}

Status ChainVerifier::Verify(const Block& b) {
  if (b.header.prev_hash != expected_prev_) {
    return Status::Corruption("hash chain broken at block " +
                              std::to_string(b.header.block_id));
  }
  if (BlockCodec::TxnRoot(b.batch) != b.header.txn_root) {
    return Status::Corruption("transaction root mismatch");
  }
  if (BlockCodec::HashHeader(b.header) != b.header.block_hash) {
    return Status::Corruption("block hash mismatch");
  }
  const Digest expect_sig =
      HmacSha256(secret_, b.header.block_hash.data(), b.header.block_hash.size());
  if (expect_sig != b.header.signature) {
    return Status::Corruption("bad orderer signature");
  }
  expected_prev_ = b.header.block_hash;
  return Status::OK();
}

Status ChainVerifier::VerifyChain(const std::vector<Block>& blocks,
                                  const std::string& secret) {
  ChainVerifier v(secret);
  // A chain whose first record is past block 1 is a truncated or
  // snapshot-installed log: the records below it were retired, so the audit
  // anchors at the first record's stated predecessor (every surviving
  // record is still hash- and signature-checked).
  if (!blocks.empty() && blocks.front().header.block_id > 1) {
    v.Reset(blocks.front().header.prev_hash);
  }
  for (const Block& b : blocks) {
    HARMONY_RETURN_NOT_OK(v.Verify(b));
  }
  return Status::OK();
}

}  // namespace harmony
