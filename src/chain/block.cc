#include "chain/block.h"

#include "common/codec.h"

namespace harmony {

void BlockCodec::EncodeTxn(const TxnRequest& t, std::string* out) {
  codec::AppendU32(out, t.proc_id);
  codec::AppendU64(out, t.client_id);
  codec::AppendU64(out, t.client_seq);
  codec::AppendU64(out, t.submit_time_us);
  codec::AppendU32(out, t.retries);
  codec::AppendU64(out, t.fee);
  codec::AppendU32(out, static_cast<uint32_t>(t.args.ints.size()));
  for (int64_t v : t.args.ints) codec::AppendI64(out, v);
  codec::AppendBytes(out, t.args.blob);
}

bool BlockCodec::DecodeTxn(codec::Reader* r, TxnRequest* out) {
  uint32_t n_ints = 0;
  if (!r->ReadU32(&out->proc_id) || !r->ReadU64(&out->client_id) ||
      !r->ReadU64(&out->client_seq) ||
      !r->ReadU64(&out->submit_time_us) || !r->ReadU32(&out->retries) ||
      !r->ReadU64(&out->fee) || !r->ReadU32(&n_ints)) {
    return false;
  }
  out->args.ints.resize(n_ints);
  for (uint32_t i = 0; i < n_ints; i++) {
    if (!r->ReadI64(&out->args.ints[i])) return false;
  }
  return r->ReadBytes(&out->args.blob);
}

std::string BlockCodec::Encode(const Block& b) {
  std::string out;
  codec::AppendU64(&out, b.header.block_id);
  codec::AppendU64(&out, b.header.first_tid);
  codec::AppendU32(&out, b.header.txn_count);
  codec::AppendU64(&out, b.header.order_time_us);
  out.append(reinterpret_cast<const char*>(b.header.prev_hash.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.txn_root.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.block_hash.data()), 32);
  out.append(reinterpret_cast<const char*>(b.header.signature.data()), 32);
  for (const TxnRequest& t : b.batch.txns) EncodeTxn(t, &out);
  return out;
}

Status BlockCodec::Decode(std::string_view bytes, Block* out) {
  codec::Reader r(bytes);
  uint64_t block_id = 0, first_tid = 0, order_time = 0;
  uint32_t txn_count = 0;
  if (!r.ReadU64(&block_id) || !r.ReadU64(&first_tid) ||
      !r.ReadU32(&txn_count) || !r.ReadU64(&order_time)) {
    return Status::Corruption("block header truncated");
  }
  out->header.block_id = block_id;
  out->header.first_tid = first_tid;
  out->header.txn_count = txn_count;
  out->header.order_time_us = order_time;
  // Digests are fixed-width raw bytes.
  for (Digest* d : {&out->header.prev_hash, &out->header.txn_root,
                    &out->header.block_hash, &out->header.signature}) {
    for (size_t i = 0; i < 32; i += 8) {
      uint64_t chunk;
      if (!r.ReadU64(&chunk)) return Status::Corruption("digest truncated");
      std::memcpy(d->data() + i, &chunk, 8);
    }
  }
  out->batch.block_id = block_id;
  out->batch.first_tid = first_tid;
  out->batch.txns.resize(txn_count);
  for (uint32_t i = 0; i < txn_count; i++) {
    if (!DecodeTxn(&r, &out->batch.txns[i])) {
      return Status::Corruption("txn truncated");
    }
  }
  return Status::OK();
}

Digest BlockCodec::TxnRoot(const TxnBatch& batch) {
  Sha256 h;
  h.UpdateInt(batch.block_id);
  h.UpdateInt(batch.first_tid);
  std::string buf;
  for (const TxnRequest& t : batch.txns) {
    buf.clear();
    EncodeTxn(t, &buf);
    h.Update(buf);
  }
  return h.Finalize();
}

Digest BlockCodec::HashHeader(const BlockHeader& h) {
  Sha256 s;
  s.UpdateInt(h.block_id);
  s.UpdateInt(h.first_tid);
  s.UpdateInt(h.txn_count);
  s.Update(h.prev_hash.data(), h.prev_hash.size());
  s.Update(h.txn_root.data(), h.txn_root.size());
  return s.Finalize();
}

Block BlockBuilder::Seal(TxnBatch batch, uint64_t order_time_us) {
  Block b;
  b.header.block_id = batch.block_id;
  b.header.first_tid = batch.first_tid;
  b.header.txn_count = static_cast<uint32_t>(batch.txns.size());
  b.header.order_time_us = order_time_us;
  b.header.prev_hash = prev_hash_;
  b.header.txn_root = BlockCodec::TxnRoot(batch);
  b.header.block_hash = BlockCodec::HashHeader(b.header);
  b.header.signature =
      HmacSha256(secret_, b.header.block_hash.data(), b.header.block_hash.size());
  b.batch = std::move(batch);
  prev_hash_ = b.header.block_hash;
  return b;
}

Status ChainVerifier::Verify(const Block& b) {
  if (b.header.prev_hash != expected_prev_) {
    return Status::Corruption("hash chain broken at block " +
                              std::to_string(b.header.block_id));
  }
  if (BlockCodec::TxnRoot(b.batch) != b.header.txn_root) {
    return Status::Corruption("transaction root mismatch");
  }
  if (BlockCodec::HashHeader(b.header) != b.header.block_hash) {
    return Status::Corruption("block hash mismatch");
  }
  const Digest expect_sig =
      HmacSha256(secret_, b.header.block_hash.data(), b.header.block_hash.size());
  if (expect_sig != b.header.signature) {
    return Status::Corruption("bad orderer signature");
  }
  expected_prev_ = b.header.block_hash;
  return Status::OK();
}

Status ChainVerifier::VerifyChain(const std::vector<Block>& blocks,
                                  const std::string& secret) {
  ChainVerifier v(secret);
  for (const Block& b : blocks) {
    HARMONY_RETURN_NOT_OK(v.Verify(b));
  }
  return Status::OK();
}

}  // namespace harmony
