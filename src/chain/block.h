#pragma once

#include <string>

#include "common/codec.h"
#include "common/compress.h"
#include "common/sha256.h"
#include "common/status.h"
#include "dcc/batch.h"

namespace harmony {

/// Block log format versions (docs/FORMATS.md has the byte-level reference).
/// The version governs both the record envelope and the per-transaction
/// codec inside it; BlockStore stamps the current version into new logs and
/// migrates older ones on open.
///  - kLogV1 — seed format: headerless file, txns carry no client_id/fee.
///  - kLogV2 — magic/version file header; client_id added to the txn codec.
///  - kLogV3 — priority fee added to the txn codec.
///  - kLogV4 — the sealed txn section is compressed per block (pluggable
///             Compression codec, raw fallback); txn codec unchanged from v3.
inline constexpr uint32_t kLogV1 = 1;
inline constexpr uint32_t kLogV2 = 2;
inline constexpr uint32_t kLogV3 = 3;
inline constexpr uint32_t kLogV4 = 4;
inline constexpr uint32_t kLogVersion = kLogV4;

/// A ledger block: the ordered transaction batch plus the tamper-evidence
/// header. Each block carries the hash of its predecessor (Section 4,
/// "Security"), so any tampered block is detected by back-tracing hashes
/// from the chain head.
struct BlockHeader {
  BlockId block_id = 0;
  TxnId first_tid = 1;
  uint32_t txn_count = 0;
  uint64_t order_time_us = 0;  ///< when the ordering service sealed the block
  Digest prev_hash{};          ///< hash of the previous block
  Digest txn_root{};           ///< digest of the serialized transactions
  Digest block_hash{};         ///< hash over (id, tids, prev_hash, txn_root)
  Digest signature{};          ///< orderer HMAC over block_hash
};

struct Block {
  BlockHeader header;
  TxnBatch batch;
};

/// Serializes / parses transactions and blocks (the logical-log record
/// format and the ordering-service wire format).
class BlockCodec {
 public:
  /// Current (v3+) transaction layout; also the wire SUBMIT payload.
  static void EncodeTxn(const TxnRequest& t, std::string* out);
  /// Version-aware parse: kLogV1 has no client_id/fee, kLogV2 no fee,
  /// kLogV3 and later are the current layout. Missing fields default to 0.
  static bool DecodeTxn(codec::Reader* r, TxnRequest* out,
                        uint32_t log_version = kLogVersion);

  /// Raw (uncompressed, v3-layout) block bytes: header + txns.
  static std::string Encode(const Block& b);
  /// Parses one block-record payload written by the given log version:
  /// v1–v3 are raw header + per-version txns; v4 wraps the txn section in a
  /// compression envelope (codec byte + raw length + stored bytes).
  static Status Decode(std::string_view bytes, Block* out,
                       uint32_t log_version = kLogV3);

  /// Encodes a v4 record payload, compressing the txn section with `codec`.
  /// Falls back to Compression::kNone per block when compression does not
  /// shrink the section. `raw_section_bytes` (optional) receives the
  /// uncompressed txn-section size and `used_codec` the codec actually
  /// stored, for compression-ratio accounting.
  static std::string EncodeRecordV4(const Block& b, Compression codec,
                                    size_t* raw_section_bytes = nullptr,
                                    Compression* used_codec = nullptr);

  /// Digest over the serialized transaction batch.
  static Digest TxnRoot(const TxnBatch& batch);

  /// Hash over the header's identity fields + txn_root + prev_hash.
  static Digest HashHeader(const BlockHeader& h);
};

/// Builds signed, hash-chained blocks (the ordering service's last step).
class BlockBuilder {
 public:
  /// `secret` is the orderer's signing key (HMAC-SHA256 stands in for an
  /// asymmetric signature; replicas hold the verification secret).
  explicit BlockBuilder(std::string secret) : secret_(std::move(secret)) {
    prev_hash_.fill(0);
  }

  /// Seals a batch into the next block of the chain.
  Block Seal(TxnBatch batch, uint64_t order_time_us);

  /// Resumes chaining from an existing tip (orderer restart).
  void ResumeFrom(const Digest& tip) { prev_hash_ = tip; }

  const Digest& prev_hash() const { return prev_hash_; }

 private:
  std::string secret_;
  Digest prev_hash_;
};

/// Replica-side block verification: signature, hash chain, txn root.
class ChainVerifier {
 public:
  explicit ChainVerifier(std::string secret) : secret_(std::move(secret)) {
    expected_prev_.fill(0);
  }

  /// Verifies block integrity and chain continuity; advances the expected
  /// predecessor hash on success.
  Status Verify(const Block& b);

  /// Fast-forwards the verifier to expect a block whose predecessor hash is
  /// `tip` (after replaying an already-audited chain).
  void Reset(const Digest& tip) { expected_prev_ = tip; }

  /// Re-checks an already-stored chain (audit / tamper detection).
  static Status VerifyChain(const std::vector<Block>& blocks,
                            const std::string& secret);

 private:
  std::string secret_;
  Digest expected_prev_;
};

}  // namespace harmony
