#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "chain/block.h"
#include "common/status.h"

namespace harmony {

namespace obs {
class EventLog;
}

/// Append-only logical log of input blocks (Section 4, "Recovery"): because
/// execution is deterministic, persisting the *inputs* is sufficient for
/// recovery — no ARIES-style physical log.
///
/// ## File format (current: block log v4 — docs/FORMATS.md is the
/// authoritative byte-level reference)
///
/// ```
///   offset 0: u32 magic           = 0x4C434248 ("HBCL" read as bytes,
///                                   little-endian on disk)
///   offset 4: u32 format_version  = current kLogVersion (chain/block.h)
///   offset 8: records...
///
///   record:   u32 payload_len
///             payload             (BlockCodec::EncodeRecordV4 bytes:
///                                  header fields + compression envelope)
///             u32 crc32(payload)  — CRC of the payload *as stored*, i.e.
///                                   over the compressed bytes
/// ```
///
/// All integers are little-endian (the codec's native byte order).
///
/// ### Version history (kLogV1..kLogV4, chain/block.h)
///  - v1 — PR 0 seed; *no header at all* (the file begins with a record
///         length); txns carry no client_id/fee.
///  - v2 — PR 1: 8-byte magic/version header introduced; `client_id`
///         added to the transaction wire format.
///  - v3 — priority `fee` added to the transaction wire format.
///  - v4 — the record payload's txn section rides a per-block compression
///         envelope (u8 codec + u32 raw_len + stored bytes); blocks whose
///         section does not shrink fall back to Compression::kNone.
///
/// ### Older logs: migrated on open
/// Open() reads v1–v3 logs (the per-version txn codecs are kept in
/// BlockCodec::DecodeTxn) and transparently rewrites them as v4 — records
/// re-encoded with the store's compression codec — via write-temp + rename,
/// so a crash mid-migration leaves the original intact and the next open
/// redoes it. After Open() the writable file is always v4.
///
/// ### Failure semantics
/// Torn tails (crash mid-append) are detected by CRC/length and truncated
/// on Open(). An unrecognized magic or a format version newer than this
/// build is an explicit NotSupported open error, never a silent truncation
/// — treating an unknown log as one giant torn tail would wipe the chain.
/// A record whose CRC passes but whose compressed payload fails to
/// decompress or parse is Corruption on read (and a torn tail on open).
class BlockStore {
 public:
  /// `sync_latency_us` is the modelled group-commit flush cost charged per
  /// append (the simulated device's fsync latency). The host-filesystem
  /// fsync is intentionally not issued on the hot path — the simulation
  /// never hard-kills the process, and a real fsync would inject the host
  /// disk's uncontrolled latency into every block. `compression` is the
  /// codec new blocks are stored with (per-block raw fallback; kNone writes
  /// v4 envelopes with every section raw).
  explicit BlockStore(std::string path, uint64_t sync_latency_us = 150,
                      Compression compression = Compression::kHlz);
  ~BlockStore();

  /// Optional structured event log: Open() emits a log_migrate event when
  /// it rewrites a pre-v4 log; TruncateBefore emits a log_truncate event.
  /// Set before Open(); nullptr disables.
  void SetEventLog(obs::EventLog* events) { events_ = events; }

  /// When enabled, TruncateBefore appends the records it drops to
  /// <path>.archive before committing the rewrite, so tooling (the torture
  /// harness, audits) can reconstruct the full chain. Crash-redo may append
  /// the same records twice; ReadArchivedBlocks dedups by block id.
  void SetArchiveTruncated(bool on) { archive_truncated_ = on; }

  /// Opens the log and scans it, truncating a torn tail if present;
  /// migrates pre-v4 logs to v4 first (see class comment).
  Status Open();

  /// Appends one block with the modelled group-commit flush. Thread-safe and
  /// strictly ordered: a call for block n+1 waits until block n is appended
  /// (pipelined replicas append from concurrent simulation threads).
  Status Append(const Block& b);

  /// Reads every block with id > after_block (recovery replay source).
  Status ReadBlocksAfter(BlockId after_block, std::vector<Block>* out);

  /// Re-bases an *empty* log so the next Append may be block id+1 — the
  /// snapshot-install path (src/repl/follower.cc): a follower that installs
  /// state as of block `id` has no records below it and never will. A log
  /// that already holds blocks through `id` is a no-op; a non-empty log
  /// behind `id` is InvalidArgument (appending past a gap would wedge the
  /// strict-ordering wait forever and hide missing records).
  Status ResetTail(BlockId id);

  /// Reads the whole chain (audit).
  Status ReadAll(std::vector<Block>* out) { return ReadBlocksAfter(0, out); }

  /// Drops every record with block_id < keep_from — the checkpoint-anchored
  /// retention path: once the manifest proves state through block B durable,
  /// records below the retention window are dead weight for recovery.
  /// Rewrites the log via write-temp (<path>.truncate) + rename, the same
  /// crash discipline as migrate-on-open: a SIGKILL anywhere yields either
  /// the old log or the new one, never a torn mix. Waits for in-flight
  /// appends; the chain tip and last_block_id() are unchanged. No-op when
  /// nothing falls below keep_from.
  Status TruncateBefore(BlockId keep_from);

  /// Reads <path>.archive (see SetArchiveTruncated): every record ever
  /// truncated out of the live log, deduped by block id and tolerant of a
  /// torn tail. OK with an empty vector when no archive exists.
  Status ReadArchivedBlocks(std::vector<Block>* out);

  /// Reads only the chain tip (the highest-id block) in O(1) I/O — the open
  /// scan remembers the last record's offset. NotFound on an empty log.
  /// Safe against concurrent Append: waits for in-flight record writes.
  Status ReadLast(Block* out);

  BlockId last_block_id() const { return last_block_id_; }
  /// Lowest block id still present in the live log; 0 when the log is
  /// empty. A value > 1 means older records were truncated (or the log was
  /// rebased by a snapshot install) — a joiner behind first_block_id() - 1
  /// cannot be served by streaming and needs a snapshot.
  BlockId first_block_id() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_block_id_;
  }
  size_t num_blocks() const { return num_blocks_; }

  // --- truncation accounting (relaxed, monotonic) -----------------------
  /// Records dropped from the live log across every TruncateBefore.
  uint64_t truncated_blocks() const {
    return truncated_blocks_.load(std::memory_order_relaxed);
  }
  /// Completed TruncateBefore rewrites (no-ops excluded).
  uint64_t truncations() const {
    return truncations_.load(std::memory_order_relaxed);
  }
  /// Current live-log size in bytes (header + retained records).
  uint64_t live_log_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return append_offset_;
  }

  // --- compression accounting (relaxed, monotonic; bench/ingest_bench.cc
  // reports compressed-vs-raw bytes per block from these) ---------------
  /// Uncompressed txn-section bytes across every Append on this handle.
  uint64_t appended_raw_bytes() const {
    return raw_bytes_.load(std::memory_order_relaxed);
  }
  /// Record bytes actually written (framing + envelope + stored section).
  uint64_t appended_disk_bytes() const {
    return disk_bytes_.load(std::memory_order_relaxed);
  }
  /// Appends whose section the codec actually shrank (vs raw fallback).
  uint64_t compressed_blocks() const {
    return compressed_blocks_.load(std::memory_order_relaxed);
  }

 private:
  Status ScanAndRepair();
  /// Rewrites a v1–v3 log as v4 (write-temp + rename) and reopens it.
  Status Migrate(uint32_t from_version);

  std::string path_;
  uint64_t sync_latency_us_;
  Compression compression_;
  obs::EventLog* events_ = nullptr;
  bool archive_truncated_ = false;
  std::atomic<uint64_t> raw_bytes_{0};
  std::atomic<uint64_t> disk_bytes_{0};
  std::atomic<uint64_t> compressed_blocks_{0};
  std::atomic<uint64_t> truncated_blocks_{0};
  std::atomic<uint64_t> truncations_{0};
  int fd_ = -1;
  mutable std::mutex mu_;
  std::condition_variable order_cv_;
  uint64_t append_offset_ = 0;
  uint64_t last_record_offset_ = 0;  ///< file offset of the tip's record
  size_t writes_in_flight_ = 0;      ///< records reserved but not yet written
  BlockId last_block_id_ = 0;
  BlockId first_block_id_ = 0;       ///< lowest id in the live log (0 = empty)
  size_t num_blocks_ = 0;
};

/// Tiny atomically-replaced manifest recording the latest checkpointed block
/// (the paper's block_checkpoint_log). Recovery loads the checkpointed state
/// and deterministically re-executes blocks after it.
class CheckpointManifest {
 public:
  explicit CheckpointManifest(std::string path) : path_(std::move(path)) {}

  /// Returns the checkpointed block id, or 0 if no checkpoint exists.
  BlockId Read() const;

  /// True when a manifest file exists. Distinguishes "checkpointed at
  /// block 0" (a durable genesis checkpoint) from "never checkpointed" —
  /// Read() returns 0 for both, but the storage layer's journal-epoch
  /// commit rule needs the difference (see DiskBackend::Open).
  bool Exists() const;

  /// Durably records a new checkpoint (write-temp + rename).
  Status Write(BlockId block_id) const;

  /// Removes a stale write-temp left by a crash between Write()'s fwrite
  /// and rename. Harmless litter (Write truncates it), but recovery paths
  /// call this so torn checkpoints leave no debris behind.
  void RemoveStaleTemp() const;

 private:
  std::string path_;
};

}  // namespace harmony
