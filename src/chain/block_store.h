#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "chain/block.h"
#include "common/status.h"

namespace harmony {

/// Append-only logical log of input blocks (Section 4, "Recovery"): because
/// execution is deterministic, persisting the *inputs* is sufficient for
/// recovery — no ARIES-style physical log.
///
/// ## File format
///
/// ```
///   offset 0: u32 magic           = 0x4C434248 ("HBCL" read as bytes,
///                                   little-endian on disk)
///   offset 4: u32 format_version  = current kLogVersion (block_store.cc)
///   offset 8: records...
///
///   record:   u32 payload_len
///             payload             (BlockCodec::Encode bytes, payload_len)
///             u32 crc32(payload)
/// ```
///
/// All integers are little-endian (the codec's native byte order).
///
/// ### Version history
///  - v1 — PR 0 seed; *no header at all* (the file begins with a record
///         length). Such logs fail the magic check.
///  - v2 — PR 1: 8-byte magic/version header introduced; `client_id`
///         added to the transaction wire format.
///  - v3 — priority `fee` added to the transaction wire format.
///
/// ### Failure semantics
/// Torn tails (crash mid-append) are detected by CRC/length and truncated
/// on Open(). A magic/version mismatch is an explicit NotSupported open
/// error, never a silent truncation — the record codec changes between
/// format versions, and treating an old log as one giant torn tail would
/// wipe the chain.
class BlockStore {
 public:
  /// `sync_latency_us` is the modelled group-commit flush cost charged per
  /// append (the simulated device's fsync latency). The host-filesystem
  /// fsync is intentionally not issued on the hot path — the simulation
  /// never hard-kills the process, and a real fsync would inject the host
  /// disk's uncontrolled latency into every block.
  explicit BlockStore(std::string path, uint64_t sync_latency_us = 150);
  ~BlockStore();

  /// Opens the log and scans it, truncating a torn tail if present.
  Status Open();

  /// Appends one block with the modelled group-commit flush. Thread-safe and
  /// strictly ordered: a call for block n+1 waits until block n is appended
  /// (pipelined replicas append from concurrent simulation threads).
  Status Append(const Block& b);

  /// Reads every block with id > after_block (recovery replay source).
  Status ReadBlocksAfter(BlockId after_block, std::vector<Block>* out);

  /// Reads the whole chain (audit).
  Status ReadAll(std::vector<Block>* out) { return ReadBlocksAfter(0, out); }

  /// Reads only the chain tip (the highest-id block) in O(1) I/O — the open
  /// scan remembers the last record's offset. NotFound on an empty log.
  /// Safe against concurrent Append: waits for in-flight record writes.
  Status ReadLast(Block* out);

  BlockId last_block_id() const { return last_block_id_; }
  size_t num_blocks() const { return num_blocks_; }

 private:
  Status ScanAndRepair();

  std::string path_;
  uint64_t sync_latency_us_;
  int fd_ = -1;
  std::mutex mu_;
  std::condition_variable order_cv_;
  uint64_t append_offset_ = 0;
  uint64_t last_record_offset_ = 0;  ///< file offset of the tip's record
  size_t writes_in_flight_ = 0;      ///< records reserved but not yet written
  BlockId last_block_id_ = 0;
  size_t num_blocks_ = 0;
};

/// Tiny atomically-replaced manifest recording the latest checkpointed block
/// (the paper's block_checkpoint_log). Recovery loads the checkpointed state
/// and deterministically re-executes blocks after it.
class CheckpointManifest {
 public:
  explicit CheckpointManifest(std::string path) : path_(std::move(path)) {}

  /// Returns the checkpointed block id, or 0 if no checkpoint exists.
  BlockId Read() const;

  /// Durably records a new checkpoint (write-temp + rename).
  Status Write(BlockId block_id) const;

 private:
  std::string path_;
};

}  // namespace harmony
