#include "dcc/false_abort_oracle.h"

#include <algorithm>
#include <unordered_map>

#include "dcc/protocol.h"

namespace harmony {

std::vector<int> FalseAbortOracle::Scc(
    const std::vector<std::vector<int>>& adj, std::vector<int>* comp_size) {
  // Iterative Tarjan.
  const int n = static_cast<int>(adj.size());
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;

  struct Frame {
    int v;
    size_t edge;
  };
  std::vector<Frame> call;

  for (int root = 0; root < n; root++) {
    if (index[root] != -1) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const int v = f.v;
      if (f.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool recursed = false;
      while (f.edge < adj[v].size()) {
        const int w = adj[v][f.edge++];
        if (index[w] == -1) {
          call.push_back({w, 0});
          recursed = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (recursed) continue;
      if (low[v] == index[v]) {
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        next_comp++;
      }
      call.pop_back();
      if (!call.empty()) {
        const int parent = call.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }

  comp_size->assign(next_comp, 0);
  for (int v = 0; v < n; v++) (*comp_size)[comp[v]]++;
  return comp;
}

size_t FalseAbortOracle::Count(const std::vector<SimRecord>& records) {
  const int n = static_cast<int>(records.size());
  // Per-key reader/writer lists (indices into records).
  std::unordered_map<Key, std::pair<std::vector<int>, std::vector<int>>> by_key;
  for (int i = 0; i < n; i++) {
    const SimRecord& r = records[i];
    if (r.logic_abort) continue;
    for (Key k : r.reads) by_key[k].first.push_back(i);
    for (const auto& w : r.writes) by_key[w.first].second.push_back(i);
  }

  std::vector<std::vector<int>> adj(n);
  for (auto& [key, rw] : by_key) {
    (void)key;
    for (int r : rw.first) {
      for (int w : rw.second) {
        if (r != w) adj[r].push_back(w);  // reader precedes writer: r -> w
      }
    }
  }

  std::vector<int> comp_size;
  const std::vector<int> comp = Scc(adj, &comp_size);

  size_t false_aborts = 0;
  for (int i = 0; i < n; i++) {
    if (records[i].cc_abort && comp_size[comp[i]] == 1) false_aborts++;
  }
  return false_aborts;
}

}  // namespace harmony
