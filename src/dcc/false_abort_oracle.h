#pragma once

#include <cstddef>
#include <vector>

namespace harmony {

struct SimRecord;

/// Figure 13 oracle: a CC abort is *false* when the aborted transaction is
/// not part of any cycle in the block's rw-subgraph (the only dependencies
/// that can force aborts under snapshot-based ODCC; ww/wr are orderable).
/// Implementation: build the rw-subgraph (reader -> writer per key), run
/// Tarjan SCC, and flag aborted transactions whose SCC is a singleton.
class FalseAbortOracle {
 public:
  /// Counts false aborts among records with cc_abort set.
  static size_t Count(const std::vector<SimRecord>& records);

  /// Strongly-connected-component ids for an adjacency list (exposed for
  /// FastFabric#'s graph traversal and for tests). Returns comp id per node
  /// and fills comp_size.
  static std::vector<int> Scc(const std::vector<std::vector<int>>& adj,
                              std::vector<int>* comp_size);
};

}  // namespace harmony
