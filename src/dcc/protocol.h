#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "dcc/batch.h"
#include "dcc/reservation.h"
#include "storage/versioned_store.h"
#include "txn/txn_context.h"

namespace harmony {

/// Which deterministic concurrency control protocol a replica runs.
enum class DccKind {
  kHarmony,      ///< this paper (Section 3)
  kAria,         ///< Aria [VLDB'20] chainified (AriaBC)
  kRbc,          ///< RBC [VLDB'19]: OE + serial SSI validation
  kFabric,       ///< Fabric v2.x SOV: stale-read (version) validation
  kFastFabric,   ///< FastFabric#: orderer-side dependency-graph reordering
};

std::string_view DccKindName(DccKind k);

/// Tuning/ablation switches. Defaults reproduce each protocol as evaluated
/// in the paper; the harmony_* flags drive the Figure 20 ablation.
struct DccConfig {
  size_t reservation_shards = 64;

  /// Build the per-block rw-subgraph and count CC aborts that are not part
  /// of any rw-cycle (Figure 13). Costs an extra SCC pass per block.
  bool enable_false_abort_oracle = false;

  // --- Harmony ablation flags (Figure 20) ---
  bool harmony_update_reordering = true;  ///< off => Aria-style ww aborts
  bool harmony_update_coalescing = true;  ///< off => one lookup per command
  bool harmony_inter_block = true;        ///< off => snapshot lag 1, no Rule 3

  // --- Aria ---
  bool aria_deterministic_reordering = true;  ///< waw ∨ (raw ∧ war) vs waw ∨ raw

  // --- SOV (Fabric / FastFabric#) ---
  /// Blocks between endorsement and validation (client round-trip + ordering
  /// queue depth). Staleness aborts grow with this lag.
  size_t sov_endorsement_lag = 2;
  /// FastFabric# drops transactions once the block dependency graph exceeds
  /// this many edges (matches the paper's observation in Section 5.3).
  size_t ff_graph_edge_cap = 20000;

  /// Straggler injection: with probability p a transaction's simulation
  /// stalls for `straggler_us` (models I/O+network latency variance inside a
  /// block, the motivation for inter-block parallelism).
  double straggler_prob = 0.0;
  uint64_t straggler_us = 0;

  /// Deterministic pipeline barrier period (= the replica's checkpoint
  /// period p). Snapshots never reach past the last barrier, so recovery
  /// from a checkpoint replays with byte-identical snapshot choices. The
  /// period is part of the chain configuration, hence identical on every
  /// replica — barriers cannot break determinism. 0 disables barriers.
  size_t barrier_every = 10;
};

/// One simulated transaction: read/write sets captured by the simulation
/// step plus the per-protocol validation scratch state.
struct SimRecord {
  TxnId tid = 0;
  bool logic_abort = false;
  bool cc_abort = false;

  std::vector<Key> reads;
  std::vector<std::pair<Key, UpdateCommand>> writes;

  /// SOV protocols ship evaluated values + read versions instead of commands.
  std::vector<std::pair<Key, std::optional<Value>>> write_values;
  std::vector<std::pair<Key, BlockId>> read_versions;

  // Harmony Algorithm 1 summary (filled in the commit step).
  TxnId min_out = 0;   ///< min outgoing rw TID (init tid+1)
  TxnId max_in = 0;    ///< max incoming rw TID (init kNoIncomingTid)
  TxnId gen_min_out = 0;  ///< generalized min_out incl. inter-block edges
};

/// State carried from a block's simulation step to its commit step.
struct SimState {
  std::vector<SimRecord> records;
  std::unique_ptr<ReservationTable> reservations;
  uint64_t sim_micros = 0;
};

/// A deterministic concurrency control protocol.
///
/// Execution is two-staged so the replica pipeline can overlap stages across
/// blocks (inter-block parallelism, Section 3.4):
///   Simulate(batch)  — obtains deterministic read-write sets; thread-safe
///                      with respect to earlier blocks' Commit;
///   Commit(batch)    — validation + apply; MUST be invoked in block order.
/// ExecuteBlock() runs both back-to-back for callers without a pipeline.
class DccProtocol {
 public:
  DccProtocol(VersionedStore* store, const ProcedureRegistry* procs,
              ThreadPool* pool, DccConfig cfg)
      : store_(store), procs_(procs), pool_(pool), cfg_(cfg) {}
  virtual ~DccProtocol() = default;

  virtual DccKind kind() const = 0;
  std::string_view name() const { return DccKindName(kind()); }

  /// Which earlier block's snapshot the simulation step reads. Harmony with
  /// inter-block parallelism uses lag 2 (snapshot of block i-2); everything
  /// else uses lag 1.
  virtual BlockId snapshot_lag() const { return 1; }

  /// Whether Simulate(i) may run concurrently with Commit(i-1).
  virtual bool supports_inter_block() const { return false; }

  virtual Status Simulate(const TxnBatch& batch) = 0;
  virtual Status Commit(const TxnBatch& batch, BlockResult* result) = 0;

  Status ExecuteBlock(const TxnBatch& batch, BlockResult* result) {
    HARMONY_RETURN_NOT_OK(Simulate(batch));
    return Commit(batch, result);
  }

  const ProtocolStats& stats() const { return stats_; }
  const DccConfig& config() const { return cfg_; }

 protected:
  /// Runs every transaction of the batch against `snapshot`, collecting
  /// read/write sets (and, when register_reservations, filling the
  /// reservation table). Parallel across transactions.
  Status SimulateBatch(const TxnBatch& batch, BlockId snapshot,
                       bool register_reservations, SimState* out);

  /// Moves a completed SimState into / out of the pending map (pipeline).
  void StashSimState(BlockId block, SimState state);
  SimState TakeSimState(BlockId block);

  /// Computes false aborts for a finished block (oracle; see DccConfig).
  size_t CountFalseAborts(const SimState& state) const;

  /// Latest checkpoint barrier strictly before `block` (0 if none).
  BlockId LastBarrierBefore(BlockId block) const {
    if (cfg_.barrier_every == 0 || block == 0) return 0;
    return ((block - 1) / cfg_.barrier_every) * cfg_.barrier_every;
  }

  /// True for the first block after a checkpoint barrier: it must not carry
  /// pipeline state (snapshots, inter-block dependencies) across the
  /// barrier, so that recovery from the checkpoint is deterministic.
  bool IsBarrierFollower(BlockId block) const {
    return cfg_.barrier_every != 0 && block > 1 &&
           block == LastBarrierBefore(block) + 1;
  }

  /// Clamps a desired snapshot so it never reaches past the last barrier.
  BlockId ClampSnapshot(BlockId desired, BlockId block) const {
    const BlockId barrier = LastBarrierBefore(block);
    return desired > barrier ? desired : barrier;
  }

  VersionedStore* store_;
  const ProcedureRegistry* procs_;
  ThreadPool* pool_;
  DccConfig cfg_;
  ProtocolStats stats_;

 private:
  std::mutex pending_mu_;
  std::unordered_map<BlockId, SimState> pending_;
};

/// Factory.
std::unique_ptr<DccProtocol> MakeProtocol(DccKind kind, VersionedStore* store,
                                          const ProcedureRegistry* procs,
                                          ThreadPool* pool,
                                          const DccConfig& cfg);

}  // namespace harmony
