#pragma once

#include <array>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/spin_lock.h"
#include "common/types.h"

namespace harmony {

/// Per-block, per-key conflict aggregation shared by the snapshot-based ODCC
/// protocols (Harmony, Aria). Registration runs in parallel during the
/// simulation step (sharded spin locks); afterwards the table is read-only
/// and every transaction derives its dependency summary without any
/// cross-thread coordination — this is what keeps Harmony's Algorithm 1 O(e)
/// and fully parallel.
///
/// For each key we keep the two smallest / largest reader & writer TIDs so a
/// transaction can exclude itself when looking up "the smallest *other*
/// writer" (self-dependencies are not dependencies).
class ReservationTable {
 public:
  struct KeyEntry {
    TxnId w_min1 = kInvalidTxnId, w_min2 = kInvalidTxnId;  ///< smallest writers
    TxnId r_min1 = kInvalidTxnId, r_min2 = kInvalidTxnId;  ///< smallest readers
    TxnId r_max1 = kNoIncomingTid, r_max2 = kNoIncomingTid; ///< largest readers
    std::vector<uint32_t> writer_idx;  ///< sim-record indices of writers
    bool handled = false;              ///< update-coalescence handoff flag

    /// Smallest writer TID other than `self`; kInvalidTxnId if none.
    TxnId MinWriterExcluding(TxnId self) const {
      return w_min1 != self ? w_min1 : w_min2;
    }
    TxnId MinReaderExcluding(TxnId self) const {
      return r_min1 != self ? r_min1 : r_min2;
    }
    /// Largest reader TID other than `self`; kNoIncomingTid if none.
    TxnId MaxReaderExcluding(TxnId self) const {
      return r_max1 != self ? r_max1 : r_max2;
    }
    bool HasWriterOtherThan(TxnId self) const {
      return MinWriterExcluding(self) != kInvalidTxnId;
    }
  };

  explicit ReservationTable(size_t shards = 64) : shards_(shards) {}

  void Clear() {
    for (auto& s : shards_) s.map.clear();
  }

  /// Registers tid as a reader of key. Thread-safe.
  void RegisterRead(Key key, TxnId tid) {
    Shard& s = ShardFor(key);
    std::lock_guard<SpinLock> lk(s.mu);
    KeyEntry& e = s.map[key];
    if (tid < e.r_min1) {
      e.r_min2 = e.r_min1;
      e.r_min1 = tid;
    } else if (tid < e.r_min2 && tid != e.r_min1) {
      e.r_min2 = tid;
    }
    if (tid > e.r_max1) {
      e.r_max2 = e.r_max1;
      e.r_max1 = tid;
    } else if (tid > e.r_max2 && tid != e.r_max1) {
      e.r_max2 = tid;
    }
  }

  /// Registers tid (with sim-record index idx) as a writer of key.
  void RegisterWrite(Key key, TxnId tid, uint32_t idx) {
    Shard& s = ShardFor(key);
    std::lock_guard<SpinLock> lk(s.mu);
    KeyEntry& e = s.map[key];
    if (tid < e.w_min1) {
      e.w_min2 = e.w_min1;
      e.w_min1 = tid;
    } else if (tid < e.w_min2 && tid != e.w_min1) {
      e.w_min2 = tid;
    }
    e.writer_idx.push_back(idx);
  }

  /// Read-only lookup (post-registration). Returns nullptr if the key was
  /// never touched this block.
  const KeyEntry* Find(Key key) const {
    const Shard& s = ShardFor(key);
    auto it = s.map.find(key);
    return it == s.map.end() ? nullptr : &it->second;
  }

  /// Claims the key's update list for coalesced application; returns true
  /// exactly once per key per block (lines 11-12 of Algorithm 2).
  bool ClaimHandled(Key key) {
    Shard& s = ShardFor(key);
    std::lock_guard<SpinLock> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end() || it->second.handled) return false;
    it->second.handled = true;
    return true;
  }

 private:
  struct Shard {
    mutable SpinLock mu;
    std::unordered_map<Key, KeyEntry> map;
  };

  Shard& ShardFor(Key k) { return shards_[Mix64(k) % shards_.size()]; }
  const Shard& ShardFor(Key k) const { return shards_[Mix64(k) % shards_.size()]; }

  std::vector<Shard> shards_;
};

}  // namespace harmony
