#include "dcc/sov.h"

#include <algorithm>
#include <unordered_map>

#include "common/clock.h"
#include "dcc/false_abort_oracle.h"

namespace harmony {

Status SovProtocolBase::Simulate(const TxnBatch& batch) {
  // Endorsement state: lag blocks behind the validating state (clamped to
  // the last checkpoint barrier so recovery replays deterministically).
  const BlockId lag = 1 + cfg_.sov_endorsement_lag;
  const BlockId endorse_snapshot = ClampSnapshot(
      batch.block_id >= lag ? batch.block_id - lag : 0, batch.block_id);

  Timer timer;
  SimState st;
  const size_t n = batch.size();
  st.records.assign(n, SimRecord{});

  pool_->ParallelFor(n, [&](size_t i) {
    SimRecord& rec = st.records[i];
    rec.tid = batch.tid_of(i);
    const TxnRequest& req = batch.txns[i];
    const ProcedureFn* fn = procs_->Find(req.proc_id);
    if (fn == nullptr) {
      rec.logic_abort = true;
      return;
    }
    // Endorsement read: record (key, version) pairs for validation.
    TxnContext ctx(rec.tid, batch.block_id,
                   [&](Key k, std::optional<Value>* v) -> Status {
                     std::optional<std::string> raw;
                     BlockId version = 0;
                     Status s = store_->ReadVersionAtSnapshot(
                         k, endorse_snapshot, &raw, &version);
                     if (!s.ok()) return s;
                     rec.read_versions.emplace_back(k, version);
                     if (raw.has_value()) {
                       v->emplace(Value::Decode(*raw));
                     } else {
                       v->reset();
                     }
                     return Status::OK();
                   });
    Status s = (*fn)(ctx, req.args);
    rec.reads = ctx.read_set();
    if (!s.ok()) {
      rec.logic_abort = true;
      rec.read_versions.clear();
      return;
    }
    // Endorsers ship evaluated values, not commands: evaluate every update
    // command against the endorsement state now.
    rec.writes = std::move(ctx.mutable_write_set());
    rec.write_values.reserve(rec.writes.size());
    for (const auto& [key, cmd] : rec.writes) {
      std::optional<Value> slot;
      if (cmd.kind() != UpdateCommand::Kind::kPut &&
          cmd.kind() != UpdateCommand::Kind::kErase) {
        std::optional<std::string> raw;
        BlockId version = 0;
        Status rs =
            store_->ReadVersionAtSnapshot(key, endorse_snapshot, &raw, &version);
        if (!rs.ok()) {
          rec.logic_abort = true;
          return;
        }
        // A read-modify-write update is a logical read and must be
        // validated; a blind field set only needs the physical pre-image to
        // materialize the full record (Fabric's PutState without GetState).
        if (cmd.reads_prior_state()) {
          rec.read_versions.emplace_back(key, version);
        }
        if (raw.has_value()) slot.emplace(Value::Decode(*raw));
      }
      cmd.Apply(&slot);
      rec.write_values.emplace_back(key, std::move(slot));
    }
  });

  st.sim_micros = timer.ElapsedMicros();
  StashSimState(batch.block_id, std::move(st));
  return Status::OK();
}

Status SovProtocolBase::ApplyValues(const SimRecord& rec, BlockId block) {
  for (const auto& [key, value] : rec.write_values) {
    std::optional<std::string> encoded;
    if (value.has_value()) encoded.emplace(value->Encode());
    HARMONY_RETURN_NOT_OK(store_->ApplyWrite(key, block, encoded));
  }
  return Status::OK();
}

Status SovProtocolBase::FinishBlock(const TxnBatch& batch, SimState st,
                                    uint64_t commit_us, BlockResult* result) {
  const size_t n = st.records.size();
  result->block_id = batch.block_id;
  result->outcomes.resize(n);
  for (size_t i = 0; i < n; i++) {
    const SimRecord& rec = st.records[i];
    if (rec.logic_abort) {
      result->outcomes[i] = TxnOutcome::kLogicAborted;
      result->logic_aborted++;
    } else if (rec.cc_abort) {
      result->outcomes[i] = TxnOutcome::kCcAborted;
      result->cc_aborted++;
    } else {
      result->outcomes[i] = TxnOutcome::kCommitted;
      result->committed++;
    }
  }
  if (cfg_.enable_false_abort_oracle) {
    result->false_aborts = FalseAbortOracle::Count(st.records);
  }
  result->sim_micros = st.sim_micros;
  result->commit_micros = commit_us;
  stats_.Accumulate(*result);
  // Keep version history back to the oldest endorsement snapshot in flight.
  const BlockId lag = 1 + cfg_.sov_endorsement_lag;
  if (batch.block_id + 1 >= lag) store_->Prune(batch.block_id + 1 - lag);
  return Status::OK();
}

Status FabricProtocol::Commit(const TxnBatch& batch, BlockResult* result) {
  SimState st = TakeSimState(batch.block_id);
  auto& records = st.records;
  const BlockId current_snapshot = batch.block_id - 1;

  Timer timer;
  // Serial validation in TID order: any stale read aborts. Earlier commits
  // of the same block bump versions via block_overlay.
  std::unordered_map<Key, bool> block_overlay;  // keys written so far
  for (SimRecord& rec : records) {
    if (rec.logic_abort) continue;
    bool stale = false;
    for (const auto& [key, endorsed_version] : rec.read_versions) {
      if (block_overlay.count(key) != 0) {
        stale = true;  // an earlier txn of this block updated the key
        break;
      }
      std::optional<std::string> ignored;
      BlockId current_version = 0;
      HARMONY_RETURN_NOT_OK(store_->ReadVersionAtSnapshot(
          key, current_snapshot, &ignored, &current_version));
      if (current_version != endorsed_version) {
        stale = true;  // the key changed between endorsement and validation
        break;
      }
    }
    if (stale) {
      rec.cc_abort = true;
      continue;
    }
    HARMONY_RETURN_NOT_OK(ApplyValues(rec, batch.block_id));
    for (const auto& [key, value] : rec.write_values) {
      (void)value;
      block_overlay[key] = true;
    }
  }
  return FinishBlock(batch, std::move(st), timer.ElapsedMicros(), result);
}

Status FastFabricProtocol::Commit(const TxnBatch& batch, BlockResult* result) {
  SimState st = TakeSimState(batch.block_id);
  auto& records = st.records;
  const size_t n = records.size();
  const BlockId current_snapshot = batch.block_id - 1;

  Timer timer;

  // ---- Cross-block staleness first: the orderer validates endorsed
  // versions against its current state; stale transactions never make it
  // into the graph.
  for (SimRecord& rec : records) {
    if (rec.logic_abort) continue;
    for (const auto& [key, endorsed_version] : rec.read_versions) {
      std::optional<std::string> ignored;
      BlockId current_version = 0;
      HARMONY_RETURN_NOT_OK(store_->ReadVersionAtSnapshot(
          key, current_snapshot, &ignored, &current_version));
      if (current_version != endorsed_version) {
        rec.cc_abort = true;
        break;
      }
    }
  }

  // ---- Build the in-block dependency graph (serial — this is the
  // traversal the paper profiles as the bottleneck).
  auto alive = [&](size_t i) {
    return !records[i].logic_abort && !records[i].cc_abort;
  };
  auto build_graph = [&](std::vector<std::vector<int>>* adj, size_t* edges) {
    adj->assign(n, {});
    *edges = 0;
    std::unordered_map<Key, std::pair<std::vector<int>, std::vector<int>>> by_key;
    for (size_t i = 0; i < n; i++) {
      if (!alive(i)) continue;
      for (const auto& [k, v] : records[i].read_versions) {
        (void)v;
        by_key[k].first.push_back(static_cast<int>(i));
      }
      for (const auto& [k, v] : records[i].write_values) {
        (void)v;
        by_key[k].second.push_back(static_cast<int>(i));
      }
    }
    for (auto& [key, rw] : by_key) {
      (void)key;
      auto& [readers, writers] = rw;
      for (int r : readers) {
        for (int w : writers) {
          if (r != w) {
            (*adj)[r].push_back(w);  // reader must precede writer
            (*edges)++;
          }
        }
      }
      // ww edges: deterministic TID order among writers.
      std::sort(writers.begin(), writers.end());
      for (size_t a = 0; a + 1 < writers.size(); a++) {
        (*adj)[writers[a]].push_back(writers[a + 1]);
        (*edges)++;
      }
    }
  };

  std::vector<std::vector<int>> adj;
  size_t edges = 0;
  build_graph(&adj, &edges);

  // Graph too large: drop the highest-degree transactions (the paper notes
  // FastFabric#'s implementation sheds load this way).
  while (edges > cfg_.ff_graph_edge_cap) {
    std::vector<size_t> degree(n, 0);
    for (size_t i = 0; i < n; i++) {
      degree[i] += adj[i].size();
      for (int w : adj[i]) degree[w]++;
    }
    size_t worst = 0;
    for (size_t i = 1; i < n; i++) {
      if (alive(i) && degree[i] > degree[worst]) worst = i;
    }
    if (!alive(worst)) break;
    records[worst].cc_abort = true;
    build_graph(&adj, &edges);
  }

  // ---- Cycle elimination: abort the highest-degree member of each
  // non-trivial SCC, rebuild, repeat until acyclic.
  while (true) {
    std::vector<int> comp_size;
    std::vector<int> comp = FalseAbortOracle::Scc(adj, &comp_size);
    bool has_cycle = false;
    for (size_t i = 0; i < n; i++) {
      if (alive(i) && comp_size[comp[i]] > 1) {
        has_cycle = true;
        break;
      }
    }
    if (!has_cycle) break;
    // One victim per cyclic SCC per iteration.
    std::unordered_map<int, int> victim;  // comp -> node
    std::vector<size_t> degree(n, 0);
    for (size_t i = 0; i < n; i++) {
      degree[i] += adj[i].size();
      for (int w : adj[i]) degree[w]++;
    }
    for (size_t i = 0; i < n; i++) {
      if (!alive(i) || comp_size[comp[i]] <= 1) continue;
      auto it = victim.find(comp[i]);
      if (it == victim.end() ||
          degree[static_cast<size_t>(it->second)] < degree[i]) {
        victim[comp[i]] = static_cast<int>(i);
      }
    }
    for (const auto& [c, v] : victim) {
      (void)c;
      records[static_cast<size_t>(v)].cc_abort = true;
    }
    build_graph(&adj, &edges);
  }

  // ---- Serial apply in topological order. Kahn's algorithm on the acyclic
  // survivor graph; ties broken by TID for determinism.
  std::vector<int> indeg(n, 0);
  for (size_t i = 0; i < n; i++) {
    if (!alive(i)) continue;
    for (int w : adj[i]) {
      if (alive(static_cast<size_t>(w))) indeg[w]++;
    }
  }
  std::vector<int> ready;
  for (size_t i = 0; i < n; i++) {
    if (alive(i) && indeg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::sort(ready.begin(), ready.end());
  std::vector<int> order;
  while (!ready.empty()) {
    // Smallest TID first among ready nodes (pop_front of a sorted list).
    const int v = ready.front();
    ready.erase(ready.begin());
    order.push_back(v);
    for (int w : adj[v]) {
      if (!alive(static_cast<size_t>(w))) continue;
      if (--indeg[w] == 0) {
        ready.insert(std::upper_bound(ready.begin(), ready.end(), w), w);
      }
    }
  }
  for (int v : order) {
    HARMONY_RETURN_NOT_OK(ApplyValues(records[static_cast<size_t>(v)],
                                      batch.block_id));
  }

  return FinishBlock(batch, std::move(st), timer.ElapsedMicros(), result);
}

}  // namespace harmony
