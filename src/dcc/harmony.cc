#include "dcc/harmony.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"

namespace harmony {

Status HarmonyProtocol::Simulate(const TxnBatch& batch) {
  const BlockId lag = snapshot_lag();
  const BlockId snapshot = ClampSnapshot(
      batch.block_id >= lag ? batch.block_id - lag : 0, batch.block_id);
  SimState st;
  HARMONY_RETURN_NOT_OK(SimulateBatch(batch, snapshot,
                                      /*register_reservations=*/true, &st));
  StashSimState(batch.block_id, std::move(st));
  return Status::OK();
}

Status HarmonyProtocol::Commit(const TxnBatch& batch, BlockResult* result) {
  SimState st = TakeSimState(batch.block_id);
  auto& records = st.records;
  const ReservationTable& res = *st.reservations;
  const size_t n = records.size();
  // Inter-block dependencies never cross a checkpoint barrier (the previous
  // block's pipeline state is not part of the checkpoint).
  const bool inter =
      cfg_.harmony_inter_block && !IsBarrierFollower(batch.block_id);

  Timer timer;
  std::vector<uint8_t> dangerous(n, 0);

  // ---- Validation: Algorithm 1 (+ Rule 3 with inter-block parallelism).
  // Fully parallel: each transaction derives min_out / max_in from the
  // read-only reservation aggregates, then checks the (generalized)
  // backward dangerous structure locally.
  pool_->ParallelFor(n, [&](size_t i) {
    SimRecord& rec = records[i];
    if (rec.logic_abort) return;
    const TxnId tid = rec.tid;

    TxnId min_out = tid + 1;  // "no outgoing edge" sentinel (Algorithm 1)
    for (Key k : rec.reads) {
      const auto* e = res.Find(k);
      if (e == nullptr) continue;
      const TxnId w = e->MinWriterExcluding(tid);
      if (w != kInvalidTxnId) min_out = std::min(min_out, w);
    }
    TxnId max_in = kNoIncomingTid;
    for (const auto& [k, cmd] : rec.writes) {
      (void)cmd;
      const auto* e = res.Find(k);
      if (e == nullptr) continue;
      max_in = std::max(max_in, e->MaxReaderExcluding(tid));
    }

    // Inter-block edges (Rule 3). A transaction of block i that read a key
    // written by a *committed* transaction W of block i-1 read W's
    // before-image (its snapshot is block i-2): an inter-rw out-edge.
    TxnId min_out_eff = min_out;
    bool inter_abort = false;
    bool has_inter_out = false;
    if (inter && !prev_.writes.empty()) {
      for (Key k : rec.reads) {
        auto it = prev_.writes.find(k);
        if (it == prev_.writes.end()) continue;
        has_inter_out = true;
        min_out_eff = std::min(min_out_eff, it->second.tid);
        // Policy (ii): T_i <- W <- T with W in the earlier block. The
        // designated victim of a cross-block structure whose middle already
        // committed can only be the later transaction.
        if (it->second.gen_min_out < it->second.tid) inter_abort = true;
      }
      if (min_out_eff < tid && !inter_abort) {
        // Generalized structure T_i <- T <- W2 where W2 is a committed
        // previous-block writer that T overwrites (W2 precedes T via ww,
        // while T_i = min_out_eff must follow T). Rule 3 designates Tk=W2,
        // but W2 already committed, so the later transaction aborts —
        // deterministic on every replica since commit steps are sequenced.
        for (const auto& [k, cmd] : rec.writes) {
          (void)cmd;
          auto it = prev_.writes.find(k);
          if (it != prev_.writes.end() && min_out_eff <= it->second.tid) {
            inter_abort = true;
            break;
          }
        }
      }
      (void)has_inter_out;
    }

    rec.min_out = min_out;
    rec.max_in = max_in;
    rec.gen_min_out = min_out_eff;

    // Rule 1 / Rule 3 check (line #12 of Algorithm 1, generalized).
    const bool rule_hit =
        (min_out_eff < tid) && (min_out_eff <= max_in);
    if (rule_hit || inter_abort) {
      rec.cc_abort = true;
      dangerous[i] = 1;
      return;
    }

    // Ablation: with update reordering disabled, fall back to Aria's
    // first-writer-wins ww abort (Section 5.7).
    if (!cfg_.harmony_update_reordering) {
      for (const auto& [k, cmd] : rec.writes) {
        (void)cmd;
        const auto* e = res.Find(k);
        if (e != nullptr && e->MinWriterExcluding(tid) < tid) {
          rec.cc_abort = true;
          return;
        }
      }
    }
  });

  // ---- Apply: update reordering (Rule 2) + coalescence (Algorithm 2).
  // Parallel over transactions; exactly one transaction claims each key and
  // applies its whole (filtered, sorted, coalesced) command list.
  const BlockId base_snapshot = batch.block_id - 1;
  std::atomic<bool> apply_failed{false};
  pool_->ParallelFor(n, [&](size_t i) {
    SimRecord& rec = records[i];
    if (rec.logic_abort || rec.cc_abort) return;
    for (const auto& [key, own_cmd] : rec.writes) {
      (void)own_cmd;
      if (!st.reservations->ClaimHandled(key)) continue;
      const auto* e = res.Find(key);
      assert(e != nullptr);

      // Gather surviving writers of this key.
      struct Item {
        TxnId order;  // gen_min_out (== min_out when intra-block only)
        TxnId tid;
        const UpdateCommand* cmd;
      };
      std::vector<Item> items;
      items.reserve(e->writer_idx.size());
      for (uint32_t idx : e->writer_idx) {
        const SimRecord& w = records[idx];
        if (w.cc_abort || w.logic_abort) continue;
        for (const auto& [wk, wcmd] : w.writes) {
          if (wk == key) {
            items.push_back(Item{w.gen_min_out, w.tid, &wcmd});
            break;
          }
        }
      }
      if (items.empty()) continue;
      // Rule 2: ascending min_out, ties by TID — a topological order of the
      // acyclic rw-subgraph (Theorem 2).
      std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
        return a.order != b.order ? a.order < b.order : a.tid < b.tid;
      });

      Status s;
      std::optional<Value> slot;
      auto read_base = [&]() -> Status {
        std::optional<std::string> raw;
        HARMONY_RETURN_NOT_OK(store_->ReadAtSnapshot(key, base_snapshot, &raw));
        if (raw.has_value()) slot.emplace(Value::Decode(*raw));
        return Status::OK();
      };

      if (cfg_.harmony_update_coalescing) {
        UpdateCommand merged = *items[0].cmd;
        for (size_t j = 1; j < items.size(); j++) merged.Coalesce(*items[j].cmd);
        if (merged.kind() != UpdateCommand::Kind::kPut &&
            merged.kind() != UpdateCommand::Kind::kErase) {
          s = read_base();
          if (!s.ok()) {
            apply_failed.store(true);
            continue;
          }
        }
        merged.Apply(&slot);
      } else {
        // Ablation: apply each command separately — every command pays its
        // own record lookup (the duplicated physical work of Figure 5a).
        for (size_t j = 0; j < items.size(); j++) {
          std::optional<std::string> raw;
          s = store_->ReadAtSnapshot(key, base_snapshot, &raw);
          if (!s.ok()) {
            apply_failed.store(true);
            break;
          }
          if (j == 0 && raw.has_value()) slot.emplace(Value::Decode(*raw));
          items[j].cmd->Apply(&slot);
        }
      }

      std::optional<std::string> encoded;
      if (slot.has_value()) encoded.emplace(slot->Encode());
      s = store_->ApplyWrite(key, batch.block_id, encoded);
      if (!s.ok()) apply_failed.store(true);
    }
  });
  if (apply_failed.load()) return Status::IOError("apply failed");

  // ---- Bookkeeping for the next block's Rule 3 evaluation.
  if (cfg_.harmony_inter_block) {
    prev_.Clear();
    for (const SimRecord& rec : records) {
      if (rec.cc_abort || rec.logic_abort) continue;
      for (const auto& [k, cmd] : rec.writes) {
        (void)cmd;
        prev_.writes[k] = PrevBlockInfo::WriterInfo{rec.tid, rec.gen_min_out};
      }
    }
  }

  // ---- Result assembly.
  result->block_id = batch.block_id;
  result->outcomes.resize(n);
  for (size_t i = 0; i < n; i++) {
    const SimRecord& rec = records[i];
    if (rec.logic_abort) {
      result->outcomes[i] = TxnOutcome::kLogicAborted;
      result->logic_aborted++;
    } else if (rec.cc_abort) {
      result->outcomes[i] = TxnOutcome::kCcAborted;
      result->cc_aborted++;
      if (dangerous[i]) result->dangerous_hits++;
    } else {
      result->outcomes[i] = TxnOutcome::kCommitted;
      result->committed++;
    }
  }
  if (cfg_.enable_false_abort_oracle) {
    result->false_aborts = CountFalseAborts(st);
  }
  // The schedule is equivalent to serial execution in ascending
  // (gen_min_out, tid) — the order update reordering enforces (Theorem 2).
  {
    std::vector<std::pair<TxnId, TxnId>> order;
    for (const SimRecord& rec : records) {
      if (!rec.cc_abort && !rec.logic_abort) {
        order.emplace_back(rec.gen_min_out, rec.tid);
      }
    }
    std::sort(order.begin(), order.end());
    result->equivalent_serial_order.reserve(order.size());
    for (const auto& [mo, tid] : order) {
      (void)mo;
      result->equivalent_serial_order.push_back(tid);
    }
  }
  result->sim_micros = st.sim_micros;
  result->commit_micros = timer.ElapsedMicros();
  stats_.Accumulate(*result);

  // Snapshots older than what the next simulations read can be collapsed.
  const BlockId lag = snapshot_lag();
  if (batch.block_id + 1 >= lag) store_->Prune(batch.block_id + 1 - lag);
  return Status::OK();
}

}  // namespace harmony
