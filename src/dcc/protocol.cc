#include "dcc/protocol.h"

#include <cassert>

#include "common/clock.h"
#include "dcc/false_abort_oracle.h"
#include "dcc/harmony.h"
#include "dcc/aria.h"
#include "dcc/rbc.h"
#include "dcc/sov.h"

namespace harmony {

std::string_view DccKindName(DccKind k) {
  switch (k) {
    case DccKind::kHarmony: return "Harmony";
    case DccKind::kAria: return "Aria";
    case DccKind::kRbc: return "RBC";
    case DccKind::kFabric: return "Fabric";
    case DccKind::kFastFabric: return "FastFabric#";
  }
  return "?";
}

Status DccProtocol::SimulateBatch(const TxnBatch& batch, BlockId snapshot,
                                  bool register_reservations, SimState* out) {
  Timer timer;
  const size_t n = batch.size();
  out->records.assign(n, SimRecord{});
  if (register_reservations) {
    out->reservations =
        std::make_unique<ReservationTable>(cfg_.reservation_shards);
  }

  std::atomic<bool> failed{false};
  pool_->ParallelFor(n, [&](size_t i) {
    SimRecord& rec = out->records[i];
    rec.tid = batch.tid_of(i);

    // Deterministic straggler injection (latency variance inside a block).
    if (cfg_.straggler_prob > 0 &&
        static_cast<double>(Mix64(rec.tid) % 1000000) <
            cfg_.straggler_prob * 1e6) {
      SimulateDelayMicros(cfg_.straggler_us);
    }

    const TxnRequest& req = batch.txns[i];
    const ProcedureFn* fn = procs_->Find(req.proc_id);
    if (fn == nullptr) {
      rec.logic_abort = true;  // unknown contract: deterministic rejection
      return;
    }
    TxnContext ctx(rec.tid, batch.block_id,
                   [&](Key k, std::optional<Value>* v) -> Status {
                     std::optional<std::string> raw;
                     Status s = store_->ReadAtSnapshot(k, snapshot, &raw);
                     if (!s.ok()) return s;
                     if (raw.has_value()) {
                       v->emplace(Value::Decode(*raw));
                     } else {
                       v->reset();
                     }
                     return Status::OK();
                   });
    Status s = (*fn)(ctx, req.args);
    if (!s.ok()) {
      rec.logic_abort = true;  // deterministic: same on every replica
      rec.reads = ctx.read_set();
      return;
    }
    rec.reads = ctx.read_set();
    rec.writes = std::move(ctx.mutable_write_set());
    if (register_reservations) {
      for (Key k : rec.reads) out->reservations->RegisterRead(k, rec.tid);
      for (const auto& [k, cmd] : rec.writes) {
        out->reservations->RegisterWrite(k, rec.tid, static_cast<uint32_t>(i));
      }
    }
  });
  if (failed.load()) return Status::IOError("simulation failed");
  out->sim_micros = timer.ElapsedMicros();
  return Status::OK();
}

void DccProtocol::StashSimState(BlockId block, SimState state) {
  std::lock_guard<std::mutex> lk(pending_mu_);
  pending_[block] = std::move(state);
}

SimState DccProtocol::TakeSimState(BlockId block) {
  std::lock_guard<std::mutex> lk(pending_mu_);
  auto it = pending_.find(block);
  assert(it != pending_.end() && "Commit without Simulate");
  SimState s = std::move(it->second);
  pending_.erase(it);
  return s;
}

size_t DccProtocol::CountFalseAborts(const SimState& state) const {
  return FalseAbortOracle::Count(state.records);
}

std::unique_ptr<DccProtocol> MakeProtocol(DccKind kind, VersionedStore* store,
                                          const ProcedureRegistry* procs,
                                          ThreadPool* pool,
                                          const DccConfig& cfg) {
  switch (kind) {
    case DccKind::kHarmony:
      return std::make_unique<HarmonyProtocol>(store, procs, pool, cfg);
    case DccKind::kAria:
      return std::make_unique<AriaProtocol>(store, procs, pool, cfg);
    case DccKind::kRbc:
      return std::make_unique<RbcProtocol>(store, procs, pool, cfg);
    case DccKind::kFabric:
      return std::make_unique<FabricProtocol>(store, procs, pool, cfg);
    case DccKind::kFastFabric:
      return std::make_unique<FastFabricProtocol>(store, procs, pool, cfg);
  }
  return nullptr;
}

}  // namespace harmony
