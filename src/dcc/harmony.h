#pragma once

#include <unordered_map>
#include <unordered_set>

#include "dcc/protocol.h"

namespace harmony {

/// Harmony (Section 3): optimistic DCC with
///  - abort-minimizing validation — Rule 1's backward dangerous structure
///    over the rw-subgraph, O(e) per transaction, fully parallel;
///  - update reordering (Rule 2) — ww/wr dependencies never abort; update
///    commands on a key are applied in ascending (min_out, tid) order, a
///    topological order of the acyclic rw-subgraph (Theorem 2);
///  - update coalescence — one transaction applies each key's commands,
///    merged into a single physical update (affine composition);
///  - inter-block parallelism — block i simulates against snapshot i-2 while
///    block i-1 finishes; Rule 3's generalized backward dangerous structure
///    keeps commits deterministic despite inter-block rw-dependencies.
class HarmonyProtocol : public DccProtocol {
 public:
  using DccProtocol::DccProtocol;

  DccKind kind() const override { return DccKind::kHarmony; }
  BlockId snapshot_lag() const override {
    return cfg_.harmony_inter_block ? 2 : 1;
  }
  bool supports_inter_block() const override {
    return cfg_.harmony_inter_block;
  }

  Status Simulate(const TxnBatch& batch) override;
  Status Commit(const TxnBatch& batch, BlockResult* result) override;

 private:
  /// What the next block needs to know about this block's committed
  /// transactions to evaluate Rule 3 (only kept with inter-block on).
  struct PrevBlockInfo {
    struct WriterInfo {
      TxnId tid = 0;
      TxnId gen_min_out = 0;  ///< generalized min_out at W's commit
    };
    std::unordered_map<Key, WriterInfo> writes;  ///< committed writers by key
    void Clear() { writes.clear(); }
  };

  PrevBlockInfo prev_;
};

}  // namespace harmony
