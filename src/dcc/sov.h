#pragma once

#include "dcc/protocol.h"

namespace harmony {

/// Shared machinery for the Simulate-Order-Validate blockchains. The
/// "simulation" stage models endorsement: transactions execute against a
/// state that is `sov_endorsement_lag` blocks older than the validating
/// state (client round trip + ordering queue), capturing read *versions* and
/// evaluated write *values* — exactly what endorsers sign and ship.
class SovProtocolBase : public DccProtocol {
 public:
  using DccProtocol::DccProtocol;

  Status Simulate(const TxnBatch& batch) override;

 protected:
  /// Applies a committed transaction's endorsed write values at `block`.
  Status ApplyValues(const SimRecord& rec, BlockId block);

  /// Assembles BlockResult/outcome counters and prunes old versions.
  Status FinishBlock(const TxnBatch& batch, SimState st, uint64_t commit_us,
                     BlockResult* result);
};

/// Hyperledger Fabric (v2.x) validation: serial, in TID order; a transaction
/// aborts on any stale read — i.e. the endorsed version of any read key
/// differs from the key's current version (including bumps by earlier
/// transactions of the same block). Cheap but the most conservative rule in
/// the taxonomy (any rw-dependency on an earlier committer aborts).
class FabricProtocol : public SovProtocolBase {
 public:
  using SovProtocolBase::SovProtocolBase;

  DccKind kind() const override { return DccKind::kFabric; }

  Status Commit(const TxnBatch& batch, BlockResult* result) override;
};

/// FastFabric# [Ruan et al., SIGMOD'20]: the ordering service builds the
/// block's transaction dependency graph (rw edges reader->writer, ww edges
/// by TID), breaks cycles by aborting high-degree members (dropping
/// transactions outright when the graph exceeds the edge cap), then applies
/// the survivors serially in topological order. Eliminates in-block false
/// aborts at the price of an expensive, unparallelizable graph traversal —
/// the bottleneck the paper profiles at 75% of runtime on YCSB.
class FastFabricProtocol : public SovProtocolBase {
 public:
  using SovProtocolBase::SovProtocolBase;

  DccKind kind() const override { return DccKind::kFastFabric; }

  Status Commit(const TxnBatch& batch, BlockResult* result) override;
};

}  // namespace harmony
