#include "dcc/aria.h"

#include <atomic>

#include "common/clock.h"

namespace harmony {

Status AriaProtocol::Simulate(const TxnBatch& batch) {
  const BlockId snapshot = batch.block_id >= 1 ? batch.block_id - 1 : 0;
  SimState st;
  HARMONY_RETURN_NOT_OK(SimulateBatch(batch, snapshot,
                                      /*register_reservations=*/true, &st));
  StashSimState(batch.block_id, std::move(st));
  return Status::OK();
}

Status AriaProtocol::Commit(const TxnBatch& batch, BlockResult* result) {
  SimState st = TakeSimState(batch.block_id);
  auto& records = st.records;
  const ReservationTable& res = *st.reservations;
  const size_t n = records.size();

  Timer timer;

  // Parallel validation from the read-only reservation aggregates.
  pool_->ParallelFor(n, [&](size_t i) {
    SimRecord& rec = records[i];
    if (rec.logic_abort) return;
    const TxnId tid = rec.tid;

    bool waw = false, war = false;
    for (const auto& [k, cmd] : rec.writes) {
      (void)cmd;
      const auto* e = res.Find(k);
      if (e == nullptr) continue;
      if (e->MinWriterExcluding(tid) < tid) waw = true;
      if (e->MinReaderExcluding(tid) < tid) war = true;
      if (waw && war) break;
    }
    bool raw = false;
    if (!waw) {
      for (Key k : rec.reads) {
        const auto* e = res.Find(k);
        if (e != nullptr && e->MinWriterExcluding(tid) < tid) {
          raw = true;
          break;
        }
      }
    }
    rec.cc_abort = cfg_.aria_deterministic_reordering ? (waw || (raw && war))
                                                      : (waw || raw);
  });

  // Parallel apply: waw aborts guarantee at most one surviving writer per
  // key, so committed write sets are disjoint.
  const BlockId base_snapshot = batch.block_id - 1;
  std::atomic<bool> apply_failed{false};
  pool_->ParallelFor(n, [&](size_t i) {
    SimRecord& rec = records[i];
    if (rec.logic_abort || rec.cc_abort) return;
    for (const auto& [key, cmd] : rec.writes) {
      std::optional<Value> slot;
      if (cmd.kind() != UpdateCommand::Kind::kPut &&
          cmd.kind() != UpdateCommand::Kind::kErase) {
        // Aria evaluates against the snapshot it executed on.
        std::optional<std::string> raw;
        Status s = store_->ReadAtSnapshot(key, base_snapshot, &raw);
        if (!s.ok()) {
          apply_failed.store(true);
          return;
        }
        if (raw.has_value()) slot.emplace(Value::Decode(*raw));
      }
      cmd.Apply(&slot);
      std::optional<std::string> encoded;
      if (slot.has_value()) encoded.emplace(slot->Encode());
      Status s = store_->ApplyWrite(key, batch.block_id, encoded);
      if (!s.ok()) apply_failed.store(true);
    }
  });
  if (apply_failed.load()) return Status::IOError("aria apply failed");

  result->block_id = batch.block_id;
  result->outcomes.resize(n);
  for (size_t i = 0; i < n; i++) {
    const SimRecord& rec = records[i];
    if (rec.logic_abort) {
      result->outcomes[i] = TxnOutcome::kLogicAborted;
      result->logic_aborted++;
    } else if (rec.cc_abort) {
      result->outcomes[i] = TxnOutcome::kCcAborted;
      result->cc_aborted++;
    } else {
      result->outcomes[i] = TxnOutcome::kCommitted;
      result->committed++;
    }
  }
  if (cfg_.enable_false_abort_oracle) {
    result->false_aborts = CountFalseAborts(st);
  }
  result->sim_micros = st.sim_micros;
  result->commit_micros = timer.ElapsedMicros();
  stats_.Accumulate(*result);
  store_->Prune(batch.block_id);
  return Status::OK();
}

}  // namespace harmony
