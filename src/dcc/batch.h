#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "txn/procedure.h"

namespace harmony {

/// A block's worth of ordered transactions as delivered by the ordering
/// service. TIDs are dense: txns[i] has TID first_tid + i.
struct TxnBatch {
  BlockId block_id = 0;
  TxnId first_tid = 1;
  std::vector<TxnRequest> txns;

  TxnId tid_of(size_t i) const { return first_tid + i; }
  size_t size() const { return txns.size(); }
};

/// Per-transaction fate after a block executes.
enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  kCcAborted,     ///< concurrency-control abort: deterministically requeued
  kLogicAborted,  ///< the procedure itself aborted (e.g. insufficient funds)
};

/// Result of executing one block.
struct BlockResult {
  BlockId block_id = 0;
  std::vector<TxnOutcome> outcomes;
  size_t committed = 0;
  size_t cc_aborted = 0;
  size_t logic_aborted = 0;
  size_t dangerous_hits = 0;  ///< backward-dangerous-structure matches
  size_t false_aborts = 0;    ///< CC aborts outside any rw-cycle (oracle)
  uint64_t sim_micros = 0;
  uint64_t commit_micros = 0;

  /// Committed TIDs in an order the block's schedule is equivalent to
  /// (Harmony: ascending (generalized min_out, TID), a topological order of
  /// the rw-subgraph per Theorem 2; serial protocols: commit order).
  /// Empty when the protocol does not expose one (Aria with reordering).
  std::vector<TxnId> equivalent_serial_order;
};

/// Cumulative protocol counters across all blocks.
struct ProtocolStats {
  std::atomic<uint64_t> blocks{0};
  std::atomic<uint64_t> simulated{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> cc_aborted{0};
  std::atomic<uint64_t> logic_aborted{0};
  std::atomic<uint64_t> dangerous_hits{0};
  std::atomic<uint64_t> false_aborts{0};
  std::atomic<uint64_t> sim_micros{0};
  std::atomic<uint64_t> commit_micros{0};

  void Accumulate(const BlockResult& r) {
    blocks.fetch_add(1, std::memory_order_relaxed);
    simulated.fetch_add(r.outcomes.size(), std::memory_order_relaxed);
    committed.fetch_add(r.committed, std::memory_order_relaxed);
    cc_aborted.fetch_add(r.cc_aborted, std::memory_order_relaxed);
    logic_aborted.fetch_add(r.logic_aborted, std::memory_order_relaxed);
    dangerous_hits.fetch_add(r.dangerous_hits, std::memory_order_relaxed);
    false_aborts.fetch_add(r.false_aborts, std::memory_order_relaxed);
    sim_micros.fetch_add(r.sim_micros, std::memory_order_relaxed);
    commit_micros.fetch_add(r.commit_micros, std::memory_order_relaxed);
  }

  double abort_rate() const {
    const uint64_t sim = simulated.load();
    return sim == 0 ? 0.0
                    : static_cast<double>(cc_aborted.load()) /
                          static_cast<double>(sim);
  }
  double false_abort_rate() const {
    const uint64_t sim = simulated.load();
    return sim == 0 ? 0.0
                    : static_cast<double>(false_aborts.load()) /
                          static_cast<double>(sim);
  }
  double dangerous_hit_rate() const {
    const uint64_t sim = simulated.load();
    return sim == 0 ? 0.0
                    : static_cast<double>(dangerous_hits.load()) /
                          static_cast<double>(sim);
  }
};

}  // namespace harmony
