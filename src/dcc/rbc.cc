#include "dcc/rbc.h"

#include <unordered_set>

#include "common/clock.h"

namespace harmony {

Status RbcProtocol::Simulate(const TxnBatch& batch) {
  const BlockId snapshot = batch.block_id >= 1 ? batch.block_id - 1 : 0;
  SimState st;
  HARMONY_RETURN_NOT_OK(SimulateBatch(batch, snapshot,
                                      /*register_reservations=*/false, &st));
  StashSimState(batch.block_id, std::move(st));
  return Status::OK();
}

Status RbcProtocol::Commit(const TxnBatch& batch, BlockResult* result) {
  SimState st = TakeSimState(batch.block_id);
  auto& records = st.records;
  const size_t n = records.size();
  const BlockId base_snapshot = batch.block_id - 1;

  Timer timer;

  // Serial validation & apply, in TID order — determinism by construction.
  std::unordered_set<Key> committed_writes;
  std::unordered_set<Key> committed_reads;
  for (size_t i = 0; i < n; i++) {
    SimRecord& rec = records[i];
    if (rec.logic_abort) continue;

    bool ww = false;
    bool in_rw = false;   // a committed txn read a key T writes
    for (const auto& [k, cmd] : rec.writes) {
      (void)cmd;
      if (committed_writes.count(k) != 0) {
        ww = true;
        break;
      }
      if (committed_reads.count(k) != 0) in_rw = true;
    }
    bool out_rw = false;  // T read a key a committed txn wrote
    if (!ww) {
      for (Key k : rec.reads) {
        if (committed_writes.count(k) != 0) {
          out_rw = true;
          break;
        }
      }
    }
    if (ww || (in_rw && out_rw)) {
      rec.cc_abort = true;
      continue;
    }

    // Commit: apply simulated writes (evaluated against the block snapshot,
    // which is correct because committed ww overlaps are impossible and
    // committed readers of T's keys are serialized before T).
    for (const auto& [key, cmd] : rec.writes) {
      std::optional<Value> slot;
      if (cmd.kind() != UpdateCommand::Kind::kPut &&
          cmd.kind() != UpdateCommand::Kind::kErase) {
        std::optional<std::string> raw;
        HARMONY_RETURN_NOT_OK(store_->ReadAtSnapshot(key, base_snapshot, &raw));
        if (raw.has_value()) slot.emplace(Value::Decode(*raw));
      }
      cmd.Apply(&slot);
      std::optional<std::string> encoded;
      if (slot.has_value()) encoded.emplace(slot->Encode());
      HARMONY_RETURN_NOT_OK(store_->ApplyWrite(key, batch.block_id, encoded));
      committed_writes.insert(key);
    }
    for (Key k : rec.reads) committed_reads.insert(k);
  }

  result->block_id = batch.block_id;
  result->outcomes.resize(n);
  for (size_t i = 0; i < n; i++) {
    const SimRecord& rec = records[i];
    if (rec.logic_abort) {
      result->outcomes[i] = TxnOutcome::kLogicAborted;
      result->logic_aborted++;
    } else if (rec.cc_abort) {
      result->outcomes[i] = TxnOutcome::kCcAborted;
      result->cc_aborted++;
    } else {
      result->outcomes[i] = TxnOutcome::kCommitted;
      result->committed++;
    }
  }
  if (cfg_.enable_false_abort_oracle) {
    result->false_aborts = CountFalseAborts(st);
  }
  result->sim_micros = st.sim_micros;
  result->commit_micros = timer.ElapsedMicros();
  stats_.Accumulate(*result);
  store_->Prune(batch.block_id);
  return Status::OK();
}

}  // namespace harmony
