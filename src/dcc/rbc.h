#pragma once

#include "dcc/protocol.h"

namespace harmony {

/// RBC [Nathan et al., VLDB'19] — "blockchain relational database":
/// Order-Execute architecture; transactions simulate against the block
/// snapshot in parallel, then validate and commit **serially** in TID order
/// using the SSI dangerous structure:
///   abort T on a ww-dependency with an already-committed transaction of the
///   block (first-committer-wins), or when T is an SSI pivot (has both an
///   incoming and an outgoing rw-antidependency).
/// Fewer false aborts than Fabric's stale-read rule, but the serial commit
/// step caps concurrency (Section 5.2: small optimal block sizes).
class RbcProtocol : public DccProtocol {
 public:
  using DccProtocol::DccProtocol;

  DccKind kind() const override { return DccKind::kRbc; }

  Status Simulate(const TxnBatch& batch) override;
  Status Commit(const TxnBatch& batch, BlockResult* result) override;
};

}  // namespace harmony
