#pragma once

#include "dcc/protocol.h"

namespace harmony {

/// Aria [Lu et al., VLDB'20] as chainified in the paper (AriaBC): simulate
/// against the block snapshot, reserve reads/writes, then commit in parallel
/// with first-writer-wins:
///   abort T iff waw(T)                       — someone smaller wrote T's key
///          or  raw(T)                        — T read a key a smaller TID wrote
///   (with Aria's deterministic reordering: waw(T) or (raw(T) and war(T))).
/// Breaking every ww-dependency keeps commit parallel but aborts all
/// concurrent updaters of a hot record — the weakness Harmony's update
/// reordering removes.
class AriaProtocol : public DccProtocol {
 public:
  using DccProtocol::DccProtocol;

  DccKind kind() const override { return DccKind::kAria; }

  Status Simulate(const TxnBatch& batch) override;
  Status Commit(const TxnBatch& batch, BlockResult* result) override;
};

}  // namespace harmony
