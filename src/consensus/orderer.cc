#include "consensus/orderer.h"

#include <algorithm>

namespace harmony {

ConsensusProfile KafkaOrderer::Profile(size_t block_txns,
                                       size_t avg_txn_bytes) const {
  ConsensusProfile p;
  const uint64_t block_bytes =
      static_cast<uint64_t>(block_txns) * avg_txn_bytes + 256;
  // client -> leader, leader -> follower, follower ack, leader -> replicas.
  const uint64_t hop = net_.lan_one_way_us;  // brokers co-located
  p.block_latency_us = hop                       // client to leader
                       + 2 * hop                 // follower replication ack
                       + hop                     // broadcast to replica
                       + 2 * net_.TransferUs(block_bytes);
  // Throughput ceiling: leader NIC pushes each block to followers + replicas.
  const uint64_t fanout = brokers_ - 1 + net_.nodes;
  const double wire_us_per_block =
      static_cast<double>(net_.TransferUs(block_bytes) * fanout);
  p.max_blocks_per_sec = wire_us_per_block > 0 ? 1e6 / wire_us_per_block : 1e9;
  p.max_txns_per_sec = p.max_blocks_per_sec * static_cast<double>(block_txns);
  return p;
}

ConsensusProfile HotStuffOrderer::Profile(size_t block_txns,
                                          size_t avg_txn_bytes) const {
  ConsensusProfile p;
  const uint32_t n = std::max<uint32_t>(4, net_.nodes);
  const uint32_t f = (n - 1) / 3;
  const uint32_t quorum = 2 * f + 1;
  const uint64_t block_bytes =
      static_cast<uint64_t>(block_txns) * avg_txn_bytes + 256;

  // Pipelined chained-HotStuff: a block is decided after 4 phases, each a
  // leader->quorum broadcast plus quorum->leader votes: 8 quorum hops.
  const uint64_t hop = net_.QuorumOneWayUs(/*leader=*/0, quorum);
  p.block_latency_us = 8 * hop + net_.TransferUs(block_bytes);

  // Throughput: pipelining decides one block per vote round; the cap is the
  // leader pushing the block to n-1 peers plus verifying quorum signatures.
  // Vote verification parallelizes across cores (t3.2xlarge: 8 vCPUs), as
  // production HotStuff implementations do.
  constexpr double kVerifyCores = 8.0;
  const double wire_us =
      static_cast<double>(net_.TransferUs(block_bytes) * (n - 1));
  const double crypto_us =
      static_cast<double>(sig_verify_us_) * quorum / kVerifyCores;
  const double per_block_us = std::max(wire_us + crypto_us, 1.0);
  p.max_blocks_per_sec = 1e6 / per_block_us;
  p.max_txns_per_sec = p.max_blocks_per_sec * static_cast<double>(block_txns);
  return p;
}

}  // namespace harmony
