#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "testing/fault.h"

namespace harmony {

/// Geographic placement of a node (the Section 5.5 cloud cluster spans
/// Ohio, Mumbai, Sydney and Stockholm).
enum class Region : uint8_t { kOhio = 0, kMumbai, kSydney, kStockholm };

/// Network cost model for the cluster simulator: one-way latencies from a
/// WAN matrix (measured AWS inter-region RTTs, halved) or a LAN constant,
/// plus serialization delay from link bandwidth.
struct NetworkModel {
  double bandwidth_gbps = 1.0;     ///< per-node NIC (default cluster: 1 Gbps)
  uint64_t lan_one_way_us = 100;   ///< same-region one-way latency
  bool wan = false;                ///< nodes spread across 4 continents
  uint32_t nodes = 4;
  /// Optional deterministic degradation plan (src/testing/fault.h):
  /// partitioned delivery, uniform extra delay, seeded jitter. Not owned.
  const testing::NetFaultPlan* fault = nullptr;

  /// One-way inter-region latency in microseconds (approximate public AWS
  /// figures: Ohio<->Stockholm ~55ms, Ohio<->Mumbai ~95ms, ...).
  static uint64_t RegionOneWayUs(Region a, Region b) {
    static constexpr uint64_t m[4][4] = {
        //          Ohio    Mumbai  Sydney  Stockholm
        /*Ohio*/ {0, 95000, 92000, 55000},
        /*Mumbai*/ {95000, 0, 77000, 70000},
        /*Sydney*/ {92000, 77000, 0, 140000},
        /*Stockholm*/ {55000, 70000, 140000, 0},
    };
    return m[static_cast<int>(a)][static_cast<int>(b)];
  }

  /// Round-robin region assignment (20 nodes per region in the paper).
  Region RegionOf(NodeId n) const {
    if (!wan) return Region::kOhio;
    const uint32_t per = std::max<uint32_t>(1, nodes / 4);
    return static_cast<Region>(std::min<uint32_t>(3, n / per));
  }

  uint64_t OneWayUs(NodeId a, NodeId b) const {
    if (a == b) return 0;
    const Region ra = RegionOf(a), rb = RegionOf(b);
    const uint64_t base =
        ra == rb ? lan_one_way_us : RegionOneWayUs(ra, rb);
    return fault != nullptr ? fault->AdjustOneWayUs(a, b, base) : base;
  }

  /// Wire time for `bytes` at the configured bandwidth.
  uint64_t TransferUs(uint64_t bytes) const {
    const double bits = static_cast<double>(bytes) * 8.0;
    return static_cast<uint64_t>(bits / (bandwidth_gbps * 1e3));  // us
  }

  /// Latency for the leader to reach a quorum of q nodes (sorted one-way
  /// latencies, take the q-th smallest).
  uint64_t QuorumOneWayUs(NodeId leader, uint32_t q) const {
    std::vector<uint64_t> lats;
    lats.reserve(nodes);
    for (NodeId n = 0; n < nodes; n++) {
      if (n != leader) lats.push_back(OneWayUs(leader, n));
    }
    std::sort(lats.begin(), lats.end());
    if (lats.empty() || q == 0) return 0;
    return lats[std::min<size_t>(q - 1, lats.size() - 1)];
  }
};

}  // namespace harmony
