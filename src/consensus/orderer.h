#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "consensus/network_model.h"

namespace harmony {

/// Estimated behaviour of a consensus configuration for a given block shape.
struct ConsensusProfile {
  uint64_t block_latency_us = 0;   ///< submit -> block delivered at replicas
  double max_blocks_per_sec = 0;   ///< consensus-layer ceiling
  double max_txns_per_sec = 0;     ///< ceiling in transactions
};

/// The ordering service: collects client transactions, assigns TIDs, seals
/// hash-chained signed blocks, and exposes a latency/throughput profile of
/// the underlying consensus protocol (Kafka CFT or HotStuff BFT).
///
/// The database layer is the bottleneck in every disk-oriented configuration
/// (Figure 1), so consensus is modelled analytically: the profile caps
/// end-to-end throughput and adds ordering latency, while block production
/// itself is exact (real hashing, real signatures, real TID assignment).
class Orderer {
 public:
  Orderer(std::string secret, NetworkModel net)
      : builder_(std::move(secret)), net_(net) {}
  virtual ~Orderer() = default;

  virtual std::string_view name() const = 0;

  /// Consensus cost profile for blocks of `block_txns` transactions of
  /// `avg_txn_bytes` each.
  virtual ConsensusProfile Profile(size_t block_txns,
                                   size_t avg_txn_bytes) const = 0;

  /// Seals the next block from a batch of requests (assigns block id, dense
  /// TIDs, hash chain, signature).
  Block SealBlock(std::vector<TxnRequest> txns, uint64_t now_us) {
    TxnBatch batch;
    batch.block_id = ++last_block_;
    batch.first_tid = next_tid_;
    next_tid_ += txns.size();
    batch.txns = std::move(txns);
    return builder_.Seal(std::move(batch), now_us);
  }

  /// Resumes after an orderer restart: continue the chain from an existing
  /// tip with the next block id / TID.
  void ResumeFrom(BlockId last_block, TxnId next_tid, const Digest& tip) {
    last_block_ = last_block;
    next_tid_ = next_tid;
    builder_.ResumeFrom(tip);
  }

  BlockId last_block() const { return last_block_; }
  const NetworkModel& network() const { return net_; }

 protected:
  BlockBuilder builder_;
  NetworkModel net_;
  BlockId last_block_ = 0;
  TxnId next_tid_ = 1;
};

/// Crash-fault-tolerant ordering à la Kafka: client -> broker leader ->
/// follower replication (quorum ack) -> broadcast to replicas.
class KafkaOrderer : public Orderer {
 public:
  KafkaOrderer(std::string secret, NetworkModel net, uint32_t brokers = 3)
      : Orderer(std::move(secret), net), brokers_(brokers) {}

  std::string_view name() const override { return "Kafka"; }

  ConsensusProfile Profile(size_t block_txns,
                           size_t avg_txn_bytes) const override;

 private:
  uint32_t brokers_;
};

/// HotStuff BFT (Yin et al., PODC'19): pipelined 3-phase, rotating leader,
/// quorum 2f+1 of n = 3f+1. Latency is 8 one-way quorum hops per decided
/// block; throughput is capped by leader NIC bandwidth and per-signature
/// verification CPU.
class HotStuffOrderer : public Orderer {
 public:
  HotStuffOrderer(std::string secret, NetworkModel net,
                  uint64_t sig_verify_us = 40)
      : Orderer(std::move(secret), net), sig_verify_us_(sig_verify_us) {}

  std::string_view name() const override { return "HotStuff"; }

  ConsensusProfile Profile(size_t block_txns,
                           size_t avg_txn_bytes) const override;

 private:
  uint64_t sig_verify_us_;  ///< ECDSA-class verification cost per signature
};

}  // namespace harmony
