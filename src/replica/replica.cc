#include "replica/replica.h"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/clock.h"
#include "obs/trace.h"
#include "testing/crash_point.h"

namespace harmony {

Replica::Replica(ReplicaOptions opts) : opts_(std::move(opts)) {}

Replica::~Replica() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (commit_thread_.joinable()) commit_thread_.join();
}

Status Replica::Open() {
  // Checkpoint barriers and the checkpoint period must agree (see
  // DccConfig::barrier_every).
  opts_.dcc_cfg.barrier_every = opts_.checkpoint_every;

  // The manifest is read before storage opens: its block id is the proof of
  // which checkpoint epoch committed, which decides whether a surviving
  // rollback journal undoes a torn checkpoint (manifest behind the flush)
  // or is simply retired (crash after the flush, before the journal's lazy
  // retirement). See DiskBackend::Checkpoint.
  manifest_ = std::make_unique<CheckpointManifest>(opts_.dir + "/" +
                                                   opts_.name + ".ckpt");
  manifest_->RemoveStaleTemp();
  if (opts_.in_memory) {
    backend_ = std::make_unique<MemoryBackend>();
  } else {
    const uint64_t committed_epoch =
        manifest_->Exists() ? manifest_->Read() + 1 : 0;
    auto disk = std::make_unique<DiskBackend>(opts_.dir, opts_.name, opts_.disk,
                                              opts_.pool_pages,
                                              opts_.pool_stripes,
                                              opts_.flush_threads);
    disk->SetEventLog(opts_.events);
    HARMONY_RETURN_NOT_OK(disk->Open(committed_epoch));
    backend_ = std::move(disk);
  }
  store_ = std::make_unique<VersionedStore>(backend_.get());
  pool_ = std::make_unique<ThreadPool>(opts_.threads);
  protocol_ = MakeProtocol(opts_.dcc, store_.get(), &procs_, pool_.get(),
                           opts_.dcc_cfg);
  block_store_ = std::make_unique<BlockStore>(
      opts_.dir + "/" + opts_.name + ".chain", opts_.disk.fsync_latency_us,
      opts_.block_compression);
  block_store_->SetEventLog(opts_.events);
  block_store_->SetArchiveTruncated(opts_.archive_truncated);
  HARMONY_RETURN_NOT_OK(block_store_->Open());
  verifier_ = std::make_unique<ChainVerifier>(opts_.orderer_secret);

  if (protocol_->supports_inter_block()) {
    commit_thread_ = std::thread([this] { CommitWorker(); });
  }
  return Status::OK();
}

Status Replica::LoadRow(Key key, const Value& v) {
  return backend_->Put(key, v.Encode(), nullptr);
}

void Replica::RegisterProcedure(uint32_t proc_id, std::string name,
                                ProcedureFn fn) {
  procs_.Register(proc_id, std::move(name), std::move(fn));
}

Result<BlockId> Replica::Recover() {
  const BlockId checkpointed = manifest_->Read();
  HARMONY_RETURN_NOT_OK(ReplayFrom(checkpointed));
  // A snapshot-installed follower can be checkpointed past its (possibly
  // empty) block log — the records below the snapshot base never existed
  // here. The recovered tip is whichever is further along.
  return std::max(block_store_->last_block_id(), checkpointed);
}

Status Replica::ReplayFrom(BlockId checkpointed) {
  std::vector<Block> blocks;
  HARMONY_RETURN_NOT_OK(block_store_->ReadAll(&blocks));
  // Audit the whole chain before trusting it, then fast-forward the live
  // verifier to the chain tip. A log whose first record is past block 1
  // belongs to a snapshot-installed follower: the records below the base
  // were never shipped, so the audit anchors at the first record's stated
  // predecessor (every surviving record is still signature-checked).
  ChainVerifier v(opts_.orderer_secret);
  if (!blocks.empty() && blocks.front().header.block_id > 1) {
    v.Reset(blocks.front().header.prev_hash);
  }
  for (const Block& b : blocks) {
    HARMONY_RETURN_NOT_OK(v.Verify(b));
  }
  if (!blocks.empty()) {
    verifier_->Reset(blocks.back().header.block_hash);
  } else if (checkpointed != 0) {
    // Snapshot installed, no blocks appended since: the persisted anchor is
    // the only record of what the next block must chain from.
    Digest anchor{};
    if (ReadAnchor(&anchor)) verifier_->Reset(anchor);
  }
  if (checkpointed > block_store_->last_block_id()) {
    // Re-base the (empty) log so the next append at checkpointed+1 is legal.
    HARMONY_RETURN_NOT_OK(block_store_->ResetTail(checkpointed));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_committed_ = std::max(last_committed_, checkpointed);
    last_submitted_ = std::max(last_submitted_, checkpointed);
  }
  replaying_ = true;
  for (Block& b : blocks) {
    if (b.header.block_id <= checkpointed) continue;
    Status s = SubmitBlock(std::move(b));
    if (!s.ok()) {
      replaying_ = false;
      return s;
    }
  }
  Status s = Drain();
  replaying_ = false;
  return s;
}

std::string Replica::AnchorPath() const {
  return opts_.dir + "/" + opts_.name + ".anchor";
}

Status Replica::WriteAnchor(const Digest& d) const {
  const std::string tmp = AnchorPath() + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open anchor tmp");
  const uint32_t crc = Crc32(d.data(), d.size());
  const bool ok = std::fwrite(d.data(), d.size(), 1, f) == 1 &&
                  std::fwrite(&crc, 4, 1, f) == 1;
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!ok) return Status::IOError("write anchor");
  if (std::rename(tmp.c_str(), AnchorPath().c_str()) != 0) {
    return Status::IOError("rename anchor");
  }
  return Status::OK();
}

bool Replica::ReadAnchor(Digest* out) const {
  FILE* f = std::fopen(AnchorPath().c_str(), "rb");
  if (f == nullptr) return false;
  uint32_t crc = 0;
  const bool ok = std::fread(out->data(), out->size(), 1, f) == 1 &&
                  std::fread(&crc, 4, 1, f) == 1 &&
                  Crc32(out->data(), out->size()) == crc;
  std::fclose(f);
  return ok;
}

Status Replica::InstallSnapshot(
    BlockId base, const Digest& tip_hash,
    const std::vector<std::pair<Key, std::string>>& rows) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (last_submitted_ != last_committed_) {
      return Status::InvalidArgument("InstallSnapshot on a busy replica");
    }
    if (base <= last_committed_) {
      return Status::InvalidArgument(
          "InstallSnapshot base " + std::to_string(base) +
          " not ahead of local tip " + std::to_string(last_committed_));
    }
  }
  // The snapshot is the leader's *complete* state, superseding everything
  // local. A fresh follower may have loaded its genesis rows already (all
  // nodes boot from the same genesis config); a rejoining follower whose
  // leader truncated past its tip carries a whole recovered state. Either
  // way, drop it first so keys the leader has since erased don't survive
  // as stale residue and skew the state digest.
  std::vector<Key> existing;
  HARMONY_RETURN_NOT_OK(backend_->ScanAll(
      [&](Key k, std::string_view) { existing.push_back(k); }));
  for (Key k : existing) {
    HARMONY_RETURN_NOT_OK(backend_->Erase(k, nullptr));
  }
  // Retained version chains would shadow the installed rows on snapshot
  // reads; the replica is quiesced, so the chains carry nothing a future
  // simulation may still need.
  store_->Clear();
  for (const auto& [k, v] : rows) {
    HARMONY_RETURN_NOT_OK(backend_->Put(k, v, nullptr));
  }
  if (block_store_->last_block_id() < base && block_store_->num_blocks() > 0) {
    // Rejoin path: local records at or below `base` describe a history the
    // snapshot replaces. Empty the log so the rebase below is legal.
    HARMONY_RETURN_NOT_OK(block_store_->TruncateBefore(base + 1));
  }
  HARMONY_RETURN_NOT_OK(block_store_->ResetTail(base));
  verifier_->Reset(tip_hash);
  HARMONY_RETURN_NOT_OK(WriteAnchor(tip_hash));
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_committed_ = base;
    last_submitted_ = base;
  }
  // Make the installed state durable under a manifest at `base`: a restart
  // then replays only blocks after the snapshot, exactly like a checkpoint.
  HARMONY_RETURN_NOT_OK(backend_->Checkpoint(base + 1));
  return manifest_->Write(base);
}

Status Replica::ScanState(std::vector<std::pair<Key, std::string>>* out) {
  out->clear();
  return backend_->ScanAll([&](Key k, std::string_view v) {
    out->emplace_back(k, std::string(v));
  });
}

Status Replica::SubmitBlock(Block block) {
  const BlockId id = block.header.block_id;
  if (opts_.verify_blocks && !replaying_) {
    // Incremental verification against the replica's view of the chain head.
    HARMONY_RETURN_NOT_OK(verifier_->Verify(block));
  }
  if (opts_.persist_blocks && !replaying_ &&
      !protocol_->supports_inter_block()) {
    // Logical logging: persist the input block before execution (Section 4).
    // (The pipelined path overlaps this append with simulation instead.)
    HARMONY_RETURN_NOT_OK(block_store_->Append(block));
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    last_submitted_ = id;
  }
  // Stage tracing: decided here, where replaying_ is stable (set and
  // cleared by the thread driving the replay).
  obs::TxnTracer* tracer =
      (opts_.tracer != nullptr && opts_.tracer->enabled() && !replaying_)
          ? opts_.tracer
          : nullptr;
  if (!protocol_->supports_inter_block()) {
    // Serial pipeline: simulate + commit inline, in block order.
    uint64_t t0 = tracer != nullptr ? NowMicros() : 0;
    HARMONY_RETURN_NOT_OK(protocol_->Simulate(block.batch));
    if (tracer != nullptr) {
      const uint64_t t1 = NowMicros();
      tracer->block_execute->Record(t1 - t0);
      t0 = t1;
    }
    BlockResult result;
    HARMONY_RETURN_NOT_OK(protocol_->Commit(block.batch, &result));
    if (tracer != nullptr) tracer->block_commit->Record(NowMicros() - t0);
    HARMONY_RETURN_NOT_OK(AfterCommit(block, result));
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_committed_ = id;
    }
    // A Drain() may be parked on another thread (the ingest sealer commits
    // serial-protocol blocks on its own thread); wake it.
    cv_.notify_all();
    return Status::OK();
  }
  return ExecuteBlockPipelined(std::move(block));
}

Status Replica::ExecuteBlockPipelined(Block block) {
  const BlockId id = block.header.block_id;
  const BlockId lag = protocol_->snapshot_lag();
  // Barrier followers additionally need the previous block fully committed
  // (their snapshot is block id-1 and they carry no pipeline state).
  const bool barrier_follower =
      opts_.checkpoint_every != 0 && id > 1 &&
      (id - 1) % opts_.checkpoint_every == 0;
  const BlockId need_committed =
      barrier_follower ? id - 1 : (id >= lag ? id - lag : 0);
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return !pipeline_error_.ok() || stop_ || last_committed_ >= need_committed;
    });
    if (!pipeline_error_.ok()) return pipeline_error_;
    if (stop_) return Status::Aborted("replica shutting down");
  }

  // Simulation runs on its own thread: consecutive blocks' simulations
  // overlap with each other and with the commit worker — a straggler in
  // block i does not detain block i+1 (Section 3.4). The logical-log append
  // (group commit of the input) overlaps with simulation; it only has to
  // complete before the block's own commit step, which joins this thread.
  const bool persist_inflight = opts_.persist_blocks && !replaying_;
  auto inflight = std::make_shared<InFlight>();
  inflight->block = std::move(block);
  inflight->tracer =
      (opts_.tracer != nullptr && opts_.tracer->enabled() && !replaying_)
          ? opts_.tracer
          : nullptr;
  inflight->sim_thread = std::thread([this, inflight, persist_inflight] {
    if (persist_inflight) {
      inflight->sim_status = block_store_->Append(inflight->block);
      if (!inflight->sim_status.ok()) return;
    }
    // The log append above overlaps simulation conceptually; only the
    // Simulate itself counts as the execute stage.
    const uint64_t t0 = inflight->tracer != nullptr ? NowMicros() : 0;
    inflight->sim_status = protocol_->Simulate(inflight->block.batch);
    if (inflight->tracer != nullptr) {
      inflight->tracer->block_execute->Record(NowMicros() - t0);
    }
  });
  {
    std::lock_guard<std::mutex> lk(mu_);
    commit_queue_.push(inflight);
  }
  cv_.notify_all();
  return Status::OK();
}

void Replica::CommitWorker() {
  while (true) {
    std::shared_ptr<InFlight> item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !commit_queue_.empty(); });
      if (commit_queue_.empty()) {
        if (stop_) return;
        continue;
      }
      item = commit_queue_.front();
      commit_queue_.pop();
    }
    if (item->sim_thread.joinable()) item->sim_thread.join();
    Status s = item->sim_status;
    BlockResult result;
    const uint64_t t0 = item->tracer != nullptr ? NowMicros() : 0;
    if (s.ok()) s = protocol_->Commit(item->block.batch, &result);
    if (s.ok() && item->tracer != nullptr) {
      item->tracer->block_commit->Record(NowMicros() - t0);
    }
    if (s.ok()) {
      // Callbacks and checkpointing complete before the block counts as
      // committed: Drain() then implies every callback has fired, and the
      // barrier-follower wait covers the checkpoint itself.
      s = AfterCommit(item->block, result);
      std::lock_guard<std::mutex> lk(mu_);
      if (s.ok()) last_committed_ = item->block.header.block_id;
    }
    if (!s.ok()) {
      std::lock_guard<std::mutex> lk(mu_);
      pipeline_error_ = s;
    }
    cv_.notify_all();
  }
}

Status Replica::AfterCommit(const Block& block, const BlockResult& result) {
  const BlockId id = block.header.block_id;
  if (opts_.checkpoint_every != 0 && id % opts_.checkpoint_every == 0) {
    // Epoch id+1 keeps the journal alive until the manifest write below
    // lands; a crash between the two rolls the flush back instead of
    // leaving state@id under a manifest that says an older block — which
    // would double-apply the gap on replay.
    HARMONY_RETURN_NOT_OK(backend_->Checkpoint(id + 1));
    HARMONY_CRASH_POINT("replica.checkpoint.before_manifest");
    HARMONY_RETURN_NOT_OK(manifest_->Write(id));
    HARMONY_CRASH_POINT("replica.checkpoint.after_manifest");
    if (opts_.log_retain_blocks > 0 && opts_.persist_blocks) {
      // The manifest just proved state through `id` durable; records below
      // the retention window no longer serve recovery. Keeping at least the
      // checkpoint block itself means the log is never left empty, so the
      // recovery audit can always anchor at the first retained record.
      const BlockId keep_from =
          id > opts_.log_retain_blocks ? id - opts_.log_retain_blocks + 1 : 1;
      if (keep_from > 1) {
        HARMONY_RETURN_NOT_OK(block_store_->TruncateBefore(keep_from));
      }
    }
  }
  if (commit_cb_) commit_cb_(block, result);
  return Status::OK();
}

Status Replica::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return !pipeline_error_.ok() || last_committed_ >= last_submitted_;
  });
  return pipeline_error_;
}

Status Replica::Query(Key key, std::optional<Value>* out) {
  std::string raw;
  Status s = backend_->Get(key, &raw);
  if (s.IsNotFound()) {
    out->reset();
    return Status::OK();
  }
  HARMONY_RETURN_NOT_OK(s);
  out->emplace(Value::Decode(raw));
  return Status::OK();
}

Result<Digest> Replica::StateDigest() {
  std::vector<std::pair<Key, std::string>> rows;
  Status s = backend_->ScanAll([&](Key k, std::string_view v) {
    rows.emplace_back(k, std::string(v));
  });
  HARMONY_RETURN_NOT_OK(s);
  std::sort(rows.begin(), rows.end());
  Sha256 h;
  for (const auto& [k, v] : rows) {
    h.UpdateInt(k);
    h.Update(v);
  }
  return h.Finalize();
}

Status Replica::Checkpoint() {
  HARMONY_RETURN_NOT_OK(Drain());
  const BlockId id = last_committed();
  HARMONY_RETURN_NOT_OK(backend_->Checkpoint(id + 1));
  return manifest_->Write(id);
}

Status Replica::AuditChain() {
  std::vector<Block> blocks;
  HARMONY_RETURN_NOT_OK(block_store_->ReadAll(&blocks));
  return ChainVerifier::VerifyChain(blocks, opts_.orderer_secret);
}

BlockId Replica::last_committed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_committed_;
}

}  // namespace harmony
