#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "consensus/orderer.h"
#include "ingest/lanes.h"
#include "replica/replica.h"

namespace harmony {

enum class ConsensusKind { kKafka, kHotStuff };

/// Cluster-level configuration for a benchmark / integration run.
struct ClusterOptions {
  std::string dir;
  ReplicaOptions replica;       ///< template; name/dir specialized per node
  size_t live_replicas = 1;     ///< replicas actually executed + verified
  uint32_t total_replicas = 4;  ///< replicas modelled for network effects
  size_t block_size = 25;
  ConsensusKind consensus = ConsensusKind::kKafka;
  NetworkModel net;
  uint32_t max_retries = 20;    ///< CC-aborted txns are requeued this often
  uint64_t sov_rwset_bytes = 0; ///< >0 marks an SOV system shipping rw-sets
  /// Fee-based prioritization for the staging mempool: txns the supply
  /// stamps with fee >= this ride the high lane. 0 = single normal lane.
  uint64_t high_fee_threshold = 0;
  LaneWeights lane_weights = kDefaultLaneWeights;
};

/// Outcome of one cluster run.
struct RunReport {
  // Database-layer numbers (measured on replica 0).
  double exec_tps = 0;        ///< committed txns / wall second
  double abort_rate = 0;      ///< cc aborts / simulated txns
  double false_abort_rate = 0;
  double dangerous_hit_rate = 0;
  double mean_latency_ms = 0; ///< submit -> commit, incl. consensus model
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  double cpu_util = 0;        ///< process CPU / (wall * worker threads)
  uint64_t committed = 0;
  uint64_t dropped = 0;       ///< exceeded max_retries
  uint64_t page_reads = 0, page_writes = 0;
  uint64_t pool_hits = 0, pool_misses = 0;
  uint64_t blocks = 0;
  double sim_ms_per_block = 0;     ///< mean simulation-step time
  double commit_ms_per_block = 0;  ///< mean commit-step time

  // Modelled network/consensus ceilings (Section 5.4/5.5 sweeps).
  double consensus_cap_tps = 0;
  double sov_cap_tps = 0;       ///< rw-set broadcast ceiling (SOV only)
  double consensus_latency_ms = 0;

  /// End-to-end throughput: execution throughput clipped by the consensus
  /// and (for SOV) rw-set distribution ceilings.
  double end_to_end_tps() const {
    double t = exec_tps;
    if (consensus_cap_tps > 0) t = std::min(t, consensus_cap_tps);
    if (sov_cap_tps > 0) t = std::min(t, sov_cap_tps);
    return t;
  }
  double end_to_end_latency_ms() const {
    return mean_latency_ms + consensus_latency_ms;
  }
};

/// Drives a set of live replicas through an ordered block stream: seals
/// blocks, feeds every replica the identical chain, requeues CC-aborted
/// transactions (deterministically), gathers latency/throughput, and checks
/// replica consistency via state digests.
class Cluster {
 public:
  explicit Cluster(ClusterOptions opts);
  ~Cluster();

  /// Opens all live replicas; `setup` registers procedures and loads genesis
  /// rows (invoked once per replica — must be deterministic).
  Status Open(const std::function<Status(Replica&)>& setup);

  /// Pulls transactions from `supply` until it returns false, executes
  /// everything (including retries of aborted txns), and reports.
  /// `avg_txn_bytes` sizes the consensus model's blocks.
  Result<RunReport> Run(const std::function<bool(TxnRequest*)>& supply,
                        size_t avg_txn_bytes);

  /// All live replicas must have identical state digests.
  Status VerifyConsistency();

  Replica* replica(size_t i) { return replicas_[i].get(); }
  size_t live_replicas() const { return replicas_.size(); }
  Orderer* orderer() { return orderer_.get(); }

 private:
  ClusterOptions opts_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<Orderer> orderer_;
};

}  // namespace harmony
