#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>

#include "chain/block.h"
#include "chain/block_store.h"
#include "common/thread_pool.h"
#include "dcc/protocol.h"
#include "storage/state_backend.h"
#include "storage/versioned_store.h"

namespace harmony {

namespace obs {
class EventLog;
class TxnTracer;
}

/// Node configuration.
struct ReplicaOptions {
  std::string dir;                ///< working directory (files live here)
  std::string name = "replica";   ///< file prefix
  DccKind dcc = DccKind::kHarmony;
  DccConfig dcc_cfg;

  bool in_memory = false;         ///< Section 5.8 memory engine
  DiskModel disk = DiskModel::Ssd();
  size_t pool_pages = 4096;       ///< buffer pool capacity (16 MiB default)
  /// Buffer-pool stripes (page table / latch shards; small pools collapse
  /// to fewer — see BufferPool).
  size_t pool_stripes = BufferPool::kDefaultStripes;
  /// Writer threads for the checkpoint's parallel group flush (1 = serial).
  size_t flush_threads = BufferPool::kDefaultFlushThreads;
  size_t threads = 8;             ///< execution worker threads

  /// Block-log retention: at each checkpoint at block B, drop log records
  /// below B - log_retain_blocks + 1 (BlockStore::TruncateBefore), bounding
  /// disk usage at O(retention + checkpoint period) instead of O(chain).
  /// Minimum effective retention is 1 block (recovery anchors the chain
  /// audit at the first retained record). 0 disables truncation.
  uint64_t log_retain_blocks = 0;
  /// Copy truncated records to <name>.chain.archive before dropping them
  /// (tooling/torture ground truth; production leaves this off).
  bool archive_truncated = false;

  size_t checkpoint_every = 10;   ///< checkpoint period p, in blocks
  std::string orderer_secret = "orderer-secret";
  bool verify_blocks = true;      ///< verify signature/hash chain on receipt
  bool persist_blocks = true;     ///< append input blocks to the logical log
  /// Codec for the block log's sealed-txn sections (log v4; per-block raw
  /// fallback when a section does not shrink).
  Compression block_compression = Compression::kHlz;
  /// Optional txn-lifecycle tracer: records per-block execute (Simulate)
  /// and commit durations. Replayed blocks (Recover) are not recorded.
  obs::TxnTracer* tracer = nullptr;
  /// Optional structured event log (obs/events.h): Open-time transitions —
  /// block-log migration, rollback-journal recovery — emit typed events
  /// here. Mirrors `tracer`; nullptr disables emission.
  obs::EventLog* events = nullptr;
};

/// Invoked (on the commit thread, in block order) after each block commits.
using CommitCallback =
    std::function<void(const Block& block, const BlockResult& result)>;

/// A HarmonyBC database node: disk-oriented storage engine + versioned
/// snapshot store + a deterministic concurrency control protocol + the
/// hash-chained logical log. Replicas receive blocks from the ordering
/// service and execute them independently; determinism guarantees replica
/// consistency without coordination.
class Replica {
 public:
  explicit Replica(ReplicaOptions opts);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Opens storage, rolls back interrupted checkpoints, and replays the
  /// logical log past the last checkpoint (crash recovery).
  Status Open();

  /// Loads initial data directly into the backend (the genesis state,
  /// "block 0"). Must precede any SubmitBlock. Call Checkpoint() after the
  /// last LoadRow to make genesis durable — recovery replays blocks on top
  /// of the latest checkpoint, so an uncheckpointed genesis is lost by a
  /// crash before the first periodic checkpoint.
  Status LoadRow(Key key, const Value& v);

  /// Crash recovery: loads the checkpoint manifest and deterministically
  /// re-executes every logged block after it. Call after Open() and
  /// procedure registration (and after genesis loading on first boot —
  /// replay is a no-op then). Returns the recovered chain tip.
  Result<BlockId> Recover();

  /// Registers a stored procedure (smart contract). All replicas of a chain
  /// must register the same set.
  void RegisterProcedure(uint32_t proc_id, std::string name, ProcedureFn fn);

  /// Feeds the next block. With an inter-block-parallel protocol this
  /// returns once the block's simulation has been scheduled (the previous
  /// block may still be committing); otherwise it blocks until commit.
  /// Blocks must arrive in increasing block-id order.
  Status SubmitBlock(Block block);

  /// Waits until every submitted block has committed.
  Status Drain();

  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }

  /// Installs a leader state snapshot (src/repl/follower.cc): loads the raw
  /// backend rows, re-bases the block log and the chain verifier at block
  /// `base` (whose block hash is `tip_hash`), and checkpoints so a restart
  /// replays only blocks after the snapshot. Accepts a fresh replica or a
  /// quiesced one whose tip is behind `base` — the rejoin-after-leader-
  /// truncation path: existing state is dropped wholesale (rows, version
  /// chains, and any log records at or below `base`) before the install.
  /// InvalidArgument when blocks are mid-flight or `base` is not ahead of
  /// the local tip.
  Status InstallSnapshot(BlockId base, const Digest& tip_hash,
                         const std::vector<std::pair<Key, std::string>>& rows);

  /// Copies every backend row (key + encoded value bytes) — the snapshot
  /// source on the leader. Not a consistent cut by itself; see
  /// repl::Replicator::BuildSnapshot for the stability protocol.
  Status ScanState(std::vector<std::pair<Key, std::string>>* out);

  /// Latest committed value of a key (read-your-writes after Drain()).
  Status Query(Key key, std::optional<Value>* out);

  /// SHA-256 over the sorted latest state — the replica-consistency check.
  Result<Digest> StateDigest();

  /// Forces a checkpoint now (flush + manifest).
  Status Checkpoint();

  /// Reads the whole chain back and verifies hashes + signatures.
  Status AuditChain();

  const ProtocolStats& protocol_stats() const { return protocol_->stats(); }
  StateBackend* backend() { return backend_.get(); }
  /// The logical block log (compression accounting lives here).
  BlockStore* block_store() { return block_store_.get(); }
  DccProtocol* protocol() { return protocol_.get(); }
  BlockId last_committed() const;
  const ReplicaOptions& options() const { return opts_; }

 private:
  Status ExecuteBlockPipelined(Block block);
  Status CommitLoopStep();
  void CommitWorker();
  Status AfterCommit(const Block& block, const BlockResult& result);
  Status ReplayFrom(BlockId checkpointed);
  /// The chain-verifier anchor a snapshot install persists: with no block
  /// records below the snapshot base, the tip hash must survive restarts
  /// somewhere, or the next replicated block could not be chain-checked.
  std::string AnchorPath() const;
  Status WriteAnchor(const Digest& d) const;
  bool ReadAnchor(Digest* out) const;

  ReplicaOptions opts_;
  std::unique_ptr<StateBackend> backend_;
  std::unique_ptr<VersionedStore> store_;
  std::unique_ptr<ThreadPool> pool_;
  ProcedureRegistry procs_;
  std::unique_ptr<DccProtocol> protocol_;
  std::unique_ptr<BlockStore> block_store_;
  std::unique_ptr<CheckpointManifest> manifest_;
  std::unique_ptr<ChainVerifier> verifier_;
  CommitCallback commit_cb_;

  // Pipeline state (inter-block parallelism).
  struct InFlight {
    Block block;
    Status sim_status;
    std::thread sim_thread;  ///< joined by the commit worker
    /// Non-null when this block's stages should be recorded (tracing on and
    /// not a replay) — decided at submit time, where replaying_ is stable.
    obs::TxnTracer* tracer = nullptr;
  };
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::shared_ptr<InFlight>> commit_queue_;
  BlockId last_committed_ = 0;
  BlockId last_submitted_ = 0;
  Status pipeline_error_;
  bool stop_ = false;
  std::thread commit_thread_;
  bool replaying_ = false;
};

}  // namespace harmony
