#include "replica/cluster.h"

#include <sys/resource.h>

#include <cassert>
#include <thread>

#include "common/clock.h"
#include "ingest/mempool.h"

namespace harmony {

namespace {

double ProcessCpuSeconds() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

}  // namespace

Cluster::Cluster(ClusterOptions opts) : opts_(std::move(opts)) {
  NetworkModel net = opts_.net;
  net.nodes = opts_.total_replicas;
  if (opts_.consensus == ConsensusKind::kKafka) {
    orderer_ = std::make_unique<KafkaOrderer>(opts_.replica.orderer_secret, net);
  } else {
    orderer_ = std::make_unique<HotStuffOrderer>(opts_.replica.orderer_secret, net);
  }
}

Cluster::~Cluster() = default;

Status Cluster::Open(const std::function<Status(Replica&)>& setup) {
  for (size_t i = 0; i < opts_.live_replicas; i++) {
    ReplicaOptions ro = opts_.replica;
    ro.name = ro.name + "-r" + std::to_string(i);
    auto rep = std::make_unique<Replica>(ro);
    HARMONY_RETURN_NOT_OK(rep->Open());
    HARMONY_RETURN_NOT_OK(setup(*rep));
    replicas_.push_back(std::move(rep));
  }
  return Status::OK();
}

Result<RunReport> Cluster::Run(
    const std::function<bool(TxnRequest*)>& supply, size_t avg_txn_bytes) {
  Replica* primary = replicas_[0].get();

  const ConsensusProfile profile =
      orderer_->Profile(opts_.block_size, avg_txn_bytes);

  // Secondary replicas consume the identical chain on their own threads —
  // independent execution, exactly like real OE replicas.
  struct SecondaryFeed {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Block> q;
    bool done = false;
    Status status;
  };
  std::vector<std::unique_ptr<SecondaryFeed>> feeds;
  std::vector<std::thread> feed_threads;
  for (size_t i = 1; i < replicas_.size(); i++) {
    feeds.push_back(std::make_unique<SecondaryFeed>());
    SecondaryFeed* f = feeds.back().get();
    Replica* rep = replicas_[i].get();
    feed_threads.emplace_back([f, rep] {
      while (true) {
        Block b;
        {
          std::unique_lock<std::mutex> lk(f->mu);
          f->cv.wait(lk, [&] { return f->done || !f->q.empty(); });
          if (f->q.empty()) break;
          b = std::move(f->q.front());
          f->q.pop_front();
        }
        Status s = rep->SubmitBlock(std::move(b));
        if (!s.ok()) {
          std::lock_guard<std::mutex> lk(f->mu);
          f->status = s;
          break;
        }
      }
      Status s = rep->Drain();
      if (!s.ok()) {
        std::lock_guard<std::mutex> lk(f->mu);
        if (f->status.ok()) f->status = s;
      }
    });
  }

  // Ingress staging: fresh transactions flow through a small mempool
  // (lock-free shard-lane rings) and CC-aborted ones re-enter via its retry
  // lane (thread-safe — the commit callback runs on the replica's commit
  // thread). Fee-stamped supplies get priority ordering for free.
  MempoolOptions mo;
  mo.capacity = opts_.block_size * 8;
  mo.shards = 4;
  mo.high_fee_threshold = opts_.high_fee_threshold;
  mo.lane_weights = opts_.lane_weights;
  Mempool mempool(mo);

  // Outcome collection + deterministic retry of CC-aborted transactions.
  std::mutex out_mu;
  Histogram latencies;
  uint64_t committed = 0, dropped = 0;
  primary->SetCommitCallback([&](const Block& blk, const BlockResult& res) {
    std::lock_guard<std::mutex> lk(out_mu);
    const uint64_t now = NowMicros();
    for (size_t i = 0; i < res.outcomes.size(); i++) {
      const TxnRequest& req = blk.batch.txns[i];
      switch (res.outcomes[i]) {
        case TxnOutcome::kCommitted:
          committed++;
          latencies.Add(
              static_cast<double>(now - req.submit_time_us));
          break;
        case TxnOutcome::kCcAborted:
          if (req.retries < opts_.max_retries) {
            TxnRequest retry = req;
            retry.retries++;
            mempool.AddRetry(std::move(retry));
          } else {
            dropped++;
          }
          break;
        case TxnOutcome::kLogicAborted:
          break;  // deterministic application-level rejection
      }
    }
  });

  const double cpu_before = ProcessCpuSeconds();
  Timer wall;

  // Any error must fall through the cleanup below — returning with feed
  // threads joinable would std::terminate, and the commit callback captures
  // stack locals by reference.
  Status run_status;
  bool supply_exhausted = false;
  while (run_status.ok()) {
    // Refill the mempool from the workload, then cut the next block from it:
    // retries drain first (clients resubmit aborted work), then fresh
    // transactions.
    while (!supply_exhausted && mempool.size() < opts_.block_size) {
      TxnRequest req;
      if (!supply(&req)) {
        supply_exhausted = true;
        break;
      }
      req.submit_time_us = NowMicros();
      if (Status s = mempool.Add(std::move(req)); !s.ok()) {
        run_status = s;
        break;
      }
    }
    if (!run_status.ok()) break;
    std::vector<TxnRequest> txns;
    txns.reserve(opts_.block_size);
    mempool.TakeBatch(opts_.block_size, &txns);
    if (txns.empty()) {
      if (!supply_exhausted) continue;
      // Drain the pipeline; aborted txns may still flow into the retry lane.
      run_status = primary->Drain();
      if (!run_status.ok() || mempool.empty()) break;
      continue;
    }

    Block block = orderer_->SealBlock(std::move(txns), NowMicros());
    for (size_t i = 0; i < feeds.size(); i++) {
      std::lock_guard<std::mutex> lk(feeds[i]->mu);
      feeds[i]->q.push_back(block);  // copy: independent replicas
      feeds[i]->cv.notify_one();
    }
    run_status = primary->SubmitBlock(std::move(block));
  }
  if (run_status.ok()) run_status = primary->Drain();

  const double wall_s = wall.ElapsedSeconds();
  const double cpu_s = ProcessCpuSeconds() - cpu_before;

  for (size_t i = 0; i < feeds.size(); i++) {
    {
      std::lock_guard<std::mutex> lk(feeds[i]->mu);
      feeds[i]->done = true;
    }
    feeds[i]->cv.notify_all();
  }
  for (auto& t : feed_threads) t.join();
  // The callback references this frame's mempool/histogram; detach it before
  // they go out of scope.
  primary->SetCommitCallback(nullptr);
  HARMONY_RETURN_NOT_OK(run_status);
  for (auto& f : feeds) {
    HARMONY_RETURN_NOT_OK(f->status);
  }

  RunReport rep;
  rep.committed = committed;
  rep.dropped = dropped;
  rep.exec_tps = wall_s > 0 ? static_cast<double>(committed) / wall_s : 0;
  const ProtocolStats& ps = primary->protocol_stats();
  rep.abort_rate = ps.abort_rate();
  rep.false_abort_rate = ps.false_abort_rate();
  rep.dangerous_hit_rate = ps.dangerous_hit_rate();
  rep.mean_latency_ms = latencies.Mean() / 1e3;
  rep.p50_latency_ms = latencies.Percentile(50) / 1e3;
  rep.p99_latency_ms = latencies.Percentile(99) / 1e3;
  // CPU utilization relative to the cores actually available: simulated I/O
  // sleeps release the CPU, so idle gaps show up here exactly as they would
  // in the paper's CPU-utilization row (Figure 20).
  const double cores = std::max(1u, std::thread::hardware_concurrency());
  rep.cpu_util = wall_s > 0 ? std::min(1.0, cpu_s / (wall_s * cores)) : 0;
  rep.blocks = ps.blocks.load();
  if (rep.blocks > 0) {
    rep.sim_ms_per_block =
        static_cast<double>(ps.sim_micros.load()) / 1e3 /
        static_cast<double>(rep.blocks);
    rep.commit_ms_per_block =
        static_cast<double>(ps.commit_micros.load()) / 1e3 /
        static_cast<double>(rep.blocks);
  }
  rep.page_reads = primary->backend()->page_reads();
  rep.page_writes = primary->backend()->page_writes();
  rep.pool_hits = primary->backend()->pool_hits();
  rep.pool_misses = primary->backend()->pool_misses();

  rep.consensus_cap_tps = profile.max_txns_per_sec;
  rep.consensus_latency_ms =
      static_cast<double>(profile.block_latency_us) / 1e3;
  if (opts_.sov_rwset_bytes > 0) {
    // SOV ships signed read-write sets: client -> orderer -> every replica.
    NetworkModel net = opts_.net;
    net.nodes = opts_.total_replicas;
    const double per_txn_us = static_cast<double>(
        net.TransferUs(opts_.sov_rwset_bytes * opts_.total_replicas));
    rep.sov_cap_tps = per_txn_us > 0 ? 1e6 / per_txn_us : 0;
    // Extra endorsement round trip (client -> endorser -> client).
    rep.consensus_latency_ms +=
        2.0 * static_cast<double>(net.lan_one_way_us) / 1e3;
  }
  return rep;
}

Status Cluster::VerifyConsistency() {
  if (replicas_.empty()) return Status::OK();
  auto d0 = replicas_[0]->StateDigest();
  HARMONY_RETURN_NOT_OK(d0.status());
  for (size_t i = 1; i < replicas_.size(); i++) {
    auto di = replicas_[i]->StateDigest();
    HARMONY_RETURN_NOT_OK(di.status());
    if (*di != *d0) {
      return Status::Corruption("replica " + std::to_string(i) +
                                " diverged from replica 0");
    }
  }
  return Status::OK();
}

}  // namespace harmony
