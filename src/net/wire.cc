#include "net/wire.h"

#include <cstring>

#include "chain/block.h"

namespace harmony {
namespace net {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kOpSubmit:
      return "SUBMIT";
    case Opcode::kOpReceipt:
      return "RECEIPT";
    case Opcode::kOpSync:
      return "SYNC";
    case Opcode::kOpStats:
      return "STATS";
    case Opcode::kOpError:
      return "ERROR";
    case Opcode::kOpBatchSubmit:
      return "BATCH_SUBMIT";
    case Opcode::kOpBatchReceipt:
      return "BATCH_RECEIPT";
    case Opcode::kOpMetrics:
      return "METRICS";
    case Opcode::kOpReplJoin:
      return "REPL_JOIN";
    case Opcode::kOpReplicate:
      return "REPLICATE";
    case Opcode::kOpReplicateAck:
      return "REPLICATE_ACK";
    case Opcode::kOpReplSnapshot:
      return "REPL_SNAPSHOT";
    case Opcode::kOpHealth:
      return "HEALTH";
    case Opcode::kOpEvents:
      return "EVENTS";
  }
  return "?";
}

std::string EncodeFrame(Opcode op, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  codec::AppendU32(&out, kWireMagic);
  // Stamped per frame so a non-batching exchange is byte-identical to what
  // a v1 peer speaks (see the negotiation comment in wire.h).
  out.push_back(static_cast<char>(WireVersionFor(op)));
  out.push_back(static_cast<char>(op));
  codec::AppendU16(&out, 0);  // flags
  codec::AppendU32(&out, static_cast<uint32_t>(payload.size()));
  codec::AppendU32(&out, payload.empty() ? 0 : Crc32(payload));
  codec::AppendU32(&out, Crc32(out.data(), 16));
  out.append(payload.data(), payload.size());
  return out;
}

void EncodeReceipt(const TxnReceipt& r, std::string* out) {
  out->push_back(static_cast<char>(r.outcome));
  out->push_back(static_cast<char>(r.status.code()));
  codec::AppendBytes(out, r.status.message());
  codec::AppendU64(out, r.block_id);
  codec::AppendU64(out, r.client_id);
  codec::AppendU64(out, r.client_seq);
  codec::AppendU32(out, r.retries);
  codec::AppendU64(out, r.latency_us);
}

Status WireStatus(Status::Code code, std::string msg) {
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kBusy:
      return Status::Busy(std::move(msg));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
  }
  return Status::Corruption("unknown status code " +
                            std::to_string(static_cast<int>(code)));
}

bool DecodeReceipt(std::string_view payload, TxnReceipt* out) {
  if (payload.size() < 2) return false;
  const uint8_t outcome = static_cast<uint8_t>(payload[0]);
  const uint8_t code = static_cast<uint8_t>(payload[1]);
  if (outcome > static_cast<uint8_t>(ReceiptOutcome::kRejected)) return false;
  if (code > static_cast<uint8_t>(Status::Code::kNotSupported)) return false;
  codec::Reader r(payload.substr(2));
  std::string msg;
  if (!r.ReadBytes(&msg) || !r.ReadU64(&out->block_id) ||
      !r.ReadU64(&out->client_id) || !r.ReadU64(&out->client_seq) ||
      !r.ReadU32(&out->retries) || !r.ReadU64(&out->latency_us)) {
    return false;
  }
  out->outcome = static_cast<ReceiptOutcome>(outcome);
  out->status = WireStatus(static_cast<Status::Code>(code), std::move(msg));
  return r.remaining() == 0;
}

void EncodeError(const WireError& e, std::string* out) {
  out->push_back(static_cast<char>(e.code));
  codec::AppendU64(out, e.client_seq);
  codec::AppendBytes(out, e.message);
}

bool DecodeError(std::string_view payload, WireError* out) {
  if (payload.empty()) return false;
  const uint8_t code = static_cast<uint8_t>(payload[0]);
  if (code > static_cast<uint8_t>(Status::Code::kNotSupported)) return false;
  codec::Reader r(payload.substr(1));
  if (!r.ReadU64(&out->client_seq) || !r.ReadBytes(&out->message)) {
    return false;
  }
  out->code = static_cast<Status::Code>(code);
  return r.remaining() == 0;
}

void EncodeBatchSubmit(const std::vector<TxnRequest>& txns,
                       std::string* out) {
  codec::AppendU32(out, static_cast<uint32_t>(txns.size()));
  for (const TxnRequest& t : txns) BlockCodec::EncodeTxn(t, out);
}

bool DecodeBatchSubmit(std::string_view payload,
                       std::vector<TxnRequest>* out) {
  codec::Reader r(payload);
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return false;
  if (count == 0 || count > kMaxBatchTxns) return false;
  // Each txn is > 4 bytes; a count the payload cannot carry must fail here,
  // not size the resize below.
  if (static_cast<uint64_t>(count) * 4 > r.remaining()) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; i++) {
    if (!BlockCodec::DecodeTxn(&r, &(*out)[i])) return false;
  }
  return r.remaining() == 0;
}

void AppendBatchReceiptEntry(const TxnReceipt& r, std::string* out) {
  std::string entry;
  EncodeReceipt(r, &entry);
  codec::AppendBytes(out, entry);
}

std::string SealBatchPayload(uint32_t count, std::string_view entries) {
  std::string payload;
  payload.reserve(4 + entries.size());
  codec::AppendU32(&payload, count);
  payload.append(entries.data(), entries.size());
  return payload;
}

bool DecodeBatchReceipt(std::string_view payload,
                        std::vector<TxnReceipt>* out) {
  codec::Reader r(payload);
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return false;
  if (count == 0 || count > kMaxBatchTxns) return false;
  if (static_cast<uint64_t>(count) * 4 > r.remaining()) return false;
  out->resize(count);
  std::string entry;
  for (uint32_t i = 0; i < count; i++) {
    if (!r.ReadBytes(&entry)) return false;
    if (!DecodeReceipt(entry, &(*out)[i])) return false;
  }
  return r.remaining() == 0;
}

void EncodeReplJoin(const WireReplJoin& j, std::string* out) {
  codec::AppendBytes(out, j.node);
  codec::AppendU64(out, j.last_block_id);
}

bool DecodeReplJoin(std::string_view payload, WireReplJoin* out) {
  codec::Reader r(payload);
  if (!r.ReadBytes(&out->node)) return false;
  if (out->node.size() > kMaxReplNodeName) return false;
  if (!r.ReadU64(&out->last_block_id)) return false;
  return r.remaining() == 0;
}

void EncodeReplicate(const Block& b, std::string* out) {
  codec::AppendU64(out, b.header.block_id);
  codec::AppendBytes(out, BlockCodec::Encode(b));
}

bool DecodeReplicate(std::string_view payload, Block* out) {
  codec::Reader r(payload);
  uint64_t id = 0;
  std::string record;
  if (!r.ReadU64(&id) || !r.ReadBytes(&record)) return false;
  if (r.remaining() != 0) return false;
  if (!BlockCodec::Decode(record, out, kLogV3).ok()) return false;
  // The outer id exists so the leader/follower can account for the frame
  // without re-decoding; a disagreement means the frame lies about itself.
  return out->header.block_id == id;
}

void EncodeReplAck(BlockId id, std::string* out) {
  codec::AppendU64(out, id);
}

bool DecodeReplAck(std::string_view payload, BlockId* id) {
  codec::Reader r(payload);
  return r.ReadU64(id) && r.remaining() == 0;
}

void EncodeSnapshot(const WireSnapshot& s, std::string* out) {
  codec::AppendU64(out, s.base_block);
  out->append(reinterpret_cast<const char*>(s.tip_hash.data()),
              s.tip_hash.size());
  codec::AppendU64(out, s.leader_tip);
  codec::AppendU32(out, static_cast<uint32_t>(s.rows.size()));
  for (const auto& [key, value] : s.rows) {
    codec::AppendU64(out, key);
    codec::AppendBytes(out, value);
  }
}

bool DecodeSnapshot(std::string_view payload, WireSnapshot* out) {
  codec::Reader r(payload);
  if (!r.ReadU64(&out->base_block)) return false;
  if (!r.ReadFixed(out->tip_hash.data(), out->tip_hash.size())) return false;
  uint32_t count = 0;
  if (!r.ReadU64(&out->leader_tip) || !r.ReadU32(&count)) return false;
  if (count > kMaxSnapshotRows) return false;
  // Each row is at least u64 key + u32 value length = 12 bytes.
  if (static_cast<uint64_t>(count) * 12 > r.remaining()) return false;
  out->rows.resize(count);
  for (auto& [key, value] : out->rows) {
    if (!r.ReadU64(&key) || !r.ReadBytes(&value)) return false;
  }
  return r.remaining() == 0;
}

void EncodeHealth(const WireHealth& h, std::string* out) {
  out->push_back(static_cast<char>(h.role));
  codec::AppendBytes(out, h.node);
  codec::AppendU64(out, h.height);
  codec::AppendU64(out, h.durable_tip);
  codec::AppendBytes(out, h.leader_addr);
  codec::AppendU32(out, h.peer_count);
  codec::AppendU64(out, h.uptime_us);
}

bool DecodeHealth(std::string_view payload, WireHealth* out) {
  if (payload.empty()) return false;
  const uint8_t role = static_cast<uint8_t>(payload[0]);
  if (role > WireHealth::kFollower) return false;
  codec::Reader r(payload.substr(1));
  if (!r.ReadBytes(&out->node)) return false;
  if (out->node.size() > kMaxReplNodeName) return false;
  if (!r.ReadU64(&out->height) || !r.ReadU64(&out->durable_tip)) return false;
  if (!r.ReadBytes(&out->leader_addr)) return false;
  if (out->leader_addr.size() > kMaxLeaderAddr) return false;
  if (!r.ReadU32(&out->peer_count) || !r.ReadU64(&out->uptime_us)) {
    return false;
  }
  out->role = role;
  return r.remaining() == 0;
}

void EncodeEventsReq(uint64_t cursor, std::string* out) {
  codec::AppendU64(out, cursor);
}

bool DecodeEventsReq(std::string_view payload, uint64_t* cursor) {
  codec::Reader r(payload);
  return r.ReadU64(cursor) && r.remaining() == 0;
}

void EncodeEvents(uint64_t next_cursor,
                  const std::vector<obs::EventRecord>& events,
                  std::string* out) {
  codec::AppendU64(out, next_cursor);
  codec::AppendU32(out, static_cast<uint32_t>(events.size()));
  for (const obs::EventRecord& e : events) {
    codec::AppendU64(out, e.seq);
    codec::AppendU64(out, e.time_us);
    out->push_back(static_cast<char>(e.severity));
    codec::AppendU16(out, e.code);
    codec::AppendBytes(out, e.detail);
  }
}

bool DecodeEvents(std::string_view payload, uint64_t* next_cursor,
                  std::vector<obs::EventRecord>* out) {
  codec::Reader r(payload);
  uint32_t count = 0;
  if (!r.ReadU64(next_cursor) || !r.ReadU32(&count)) return false;
  if (count > kMaxEventEntries) return false;
  // Each entry is at least seq + time + severity + code + detail len
  // = 8 + 8 + 1 + 2 + 4 bytes; an implausible count fails here, not the
  // resize below.
  if (static_cast<uint64_t>(count) * 23 > r.remaining()) return false;
  out->resize(count);
  for (obs::EventRecord& e : *out) {
    if (!r.ReadU64(&e.seq) || !r.ReadU64(&e.time_us)) return false;
    uint8_t severity = 0;
    if (!r.ReadFixed(&severity, 1)) return false;
    if (severity > static_cast<uint8_t>(obs::EventSeverity::kError)) {
      return false;
    }
    e.severity = severity;
    if (!r.ReadU16(&e.code) || !r.ReadBytes(&e.detail)) return false;
    if (e.detail.size() > kMaxEventDetail) return false;
  }
  return r.remaining() == 0;
}

void EncodeSync(uint64_t token, std::string* out) {
  codec::AppendU64(out, token);
}

bool DecodeSync(std::string_view payload, uint64_t* token) {
  codec::Reader r(payload);
  return r.ReadU64(token) && r.remaining() == 0;
}

namespace {

/// The single canonical WireStats field order. Encode and decode both walk
/// this list, so they cannot drift apart: append new fields at the END
/// (older peers skip unknown trailing fields; inserting mid-list is a wire
/// break).
template <typename Stats, typename Fn>
void ForEachStatsField(Stats& s, Fn&& fn) {
  fn(s.sess_submitted);
  fn(s.sess_committed);
  fn(s.sess_logic_aborted);
  fn(s.sess_dropped);
  fn(s.sess_rejected);
  fn(s.sess_latency_sum_us);
  fn(s.sess_latency_max_us);
  fn(s.sess_inflight);
  fn(s.ing_submitted);
  fn(s.ing_admitted);
  fn(s.ing_duplicates);
  fn(s.ing_rejected);
  fn(s.ing_rate_limited);
  fn(s.ing_demoted);
  fn(s.ing_backpressured);
  fn(s.ing_retries_enqueued);
  fn(s.ing_retries_dropped);
  fn(s.ing_sealed_blocks);
  fn(s.ing_sealed_txns);
  fn(s.ing_sealed_high);
  fn(s.ing_sealed_normal);
  fn(s.ing_sealed_low);
  fn(s.ing_sealed_retry);
  fn(s.height);
  fn(s.pending_receipts);
  fn(s.queue_depth);
}

uint32_t NumStatsFields() {
  WireStats s;
  uint32_t n = 0;
  ForEachStatsField(s, [&](uint64_t&) { n++; });
  return n;
}

}  // namespace

void EncodeStats(const WireStats& s, std::string* out) {
  codec::AppendU32(out, NumStatsFields());
  ForEachStatsField(s,
                    [&](const uint64_t& f) { codec::AppendU64(out, f); });
}

bool DecodeStats(std::string_view payload, WireStats* out) {
  codec::Reader r(payload);
  uint32_t n = 0;
  if (!r.ReadU32(&n)) return false;
  // A newer peer may append fields; decode the ones this build knows and
  // skip the rest. Fewer than we expect is a truncation, not skew.
  const uint32_t known = NumStatsFields();
  if (n < known) return false;
  bool ok = true;
  ForEachStatsField(*out, [&](uint64_t& f) { ok = ok && r.ReadU64(&f); });
  if (!ok) return false;
  for (uint32_t i = known; i < n; i++) {
    uint64_t skip;
    if (!r.ReadU64(&skip)) return false;
  }
  return r.remaining() == 0;
}

void EncodeMetrics(const obs::MetricsSnapshot& m, std::string* out) {
  codec::AppendU32(out, static_cast<uint32_t>(m.counters.size()));
  for (const auto& c : m.counters) {
    codec::AppendBytes(out, c.name);
    codec::AppendU64(out, c.value);
  }
  codec::AppendU32(out, static_cast<uint32_t>(m.gauges.size()));
  for (const auto& g : m.gauges) {
    codec::AppendBytes(out, g.name);
    codec::AppendU64(out, static_cast<uint64_t>(g.value));
  }
  codec::AppendU32(out, static_cast<uint32_t>(m.histograms.size()));
  for (const auto& h : m.histograms) {
    codec::AppendBytes(out, h.name);
    codec::AppendU64(out, h.count);
    codec::AppendU64(out, h.sum);
    codec::AppendU64(out, h.max);
    codec::AppendU32(out, static_cast<uint32_t>(h.buckets.size()));
    for (const auto& [idx, cnt] : h.buckets) {
      codec::AppendU32(out, idx);
      codec::AppendU64(out, cnt);
    }
  }
  codec::AppendU32(out, static_cast<uint32_t>(m.slow_txns.size()));
  for (const auto& t : m.slow_txns) {
    codec::AppendU64(out, t.client_id);
    codec::AppendU64(out, t.client_seq);
    codec::AppendU64(out, t.block_id);
    codec::AppendU64(out, t.queue_wait_us);
    codec::AppendU64(out, t.commit_lag_us);
    codec::AppendU64(out, t.total_us);
    codec::AppendU32(out, t.retries);
  }
}

bool DecodeMetrics(std::string_view payload, obs::MetricsSnapshot* out) {
  codec::Reader r(payload);
  // Every section: a count that must be plausible against the remaining
  // bytes *before* it drives any loop or reserve.
  auto read_count = [&](uint32_t* n, uint64_t min_entry_bytes) {
    if (!r.ReadU32(n)) return false;
    if (*n > kMaxMetricsEntries) return false;
    return static_cast<uint64_t>(*n) * min_entry_bytes <= r.remaining();
  };
  uint32_t n = 0;
  if (!read_count(&n, 12)) return false;  // name len + u64
  out->counters.resize(n);
  for (auto& c : out->counters) {
    if (!r.ReadBytes(&c.name) || !r.ReadU64(&c.value)) return false;
  }
  if (!read_count(&n, 12)) return false;
  out->gauges.resize(n);
  for (auto& g : out->gauges) {
    uint64_t v = 0;
    if (!r.ReadBytes(&g.name) || !r.ReadU64(&v)) return false;
    g.value = static_cast<int64_t>(v);
  }
  if (!read_count(&n, 32)) return false;  // name + count/sum/max + n_buckets
  out->histograms.resize(n);
  for (auto& h : out->histograms) {
    uint32_t nb = 0;
    if (!r.ReadBytes(&h.name) || !r.ReadU64(&h.count) ||
        !r.ReadU64(&h.sum) || !r.ReadU64(&h.max) || !r.ReadU32(&nb)) {
      return false;
    }
    if (nb > obs::LatencyHistogram::kBuckets) return false;
    if (static_cast<uint64_t>(nb) * 12 > r.remaining()) return false;
    h.buckets.resize(nb);
    for (auto& [idx, cnt] : h.buckets) {
      if (!r.ReadU32(&idx) || !r.ReadU64(&cnt)) return false;
      if (idx >= obs::LatencyHistogram::kBuckets) return false;
    }
  }
  if (!read_count(&n, 52)) return false;  // 6 x u64 + u32
  out->slow_txns.resize(n);
  for (auto& t : out->slow_txns) {
    if (!r.ReadU64(&t.client_id) || !r.ReadU64(&t.client_seq) ||
        !r.ReadU64(&t.block_id) || !r.ReadU64(&t.queue_wait_us) ||
        !r.ReadU64(&t.commit_lag_us) || !r.ReadU64(&t.total_us) ||
        !r.ReadU32(&t.retries)) {
      return false;
    }
  }
  return r.remaining() == 0;
}

Status FrameReassembler::Next(Frame* out) {
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not accrete every frame it ever read.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kHeaderSize) return Status::NotFound("need bytes");
  const char* h = buf_.data() + pos_;
  codec::Reader r(std::string_view(h, kHeaderSize));
  uint32_t magic = 0, payload_len = 0, payload_crc = 0, header_crc = 0;
  uint16_t flags = 0;
  uint16_t ver_op = 0;
  r.ReadU32(&magic);
  r.ReadU16(&ver_op);  // version (low byte) + opcode (high byte)
  r.ReadU16(&flags);
  r.ReadU32(&payload_len);
  r.ReadU32(&payload_crc);
  r.ReadU32(&header_crc);
  const uint8_t version = static_cast<uint8_t>(ver_op & 0xff);
  const uint8_t opcode = static_cast<uint8_t>(ver_op >> 8);
  if (magic != kWireMagic) return Status::Corruption("bad magic");
  if (header_crc != Crc32(h, 16)) return Status::Corruption("header CRC");
  if (version != kWireV1 && version != kWireV2) {
    return Status::Corruption("wire version " + std::to_string(version));
  }
  if (flags != 0) return Status::Corruption("reserved flags set");
  if (opcode < static_cast<uint8_t>(Opcode::kOpSubmit) ||
      opcode > static_cast<uint8_t>(Opcode::kOpEvents)) {
    return Status::Corruption("unknown opcode " + std::to_string(opcode));
  }
  // A batch opcode promises v2 semantics; a v1-stamped frame carrying one
  // is a peer that doesn't know what it's saying.
  if (version < WireVersionFor(static_cast<Opcode>(opcode))) {
    return Status::Corruption("opcode " + std::to_string(opcode) +
                              " not valid in wire v" +
                              std::to_string(version));
  }
  if (payload_len > max_payload_) {
    return Status::Corruption("oversized frame (" +
                              std::to_string(payload_len) + " bytes)");
  }
  if (buf_.size() - pos_ < kHeaderSize + payload_len) {
    return Status::NotFound("need payload");
  }
  std::string_view payload(buf_.data() + pos_ + kHeaderSize, payload_len);
  const uint32_t crc = payload_len == 0 ? 0 : Crc32(payload);
  if (crc != payload_crc) return Status::Corruption("payload CRC");
  out->opcode = static_cast<Opcode>(opcode);
  out->payload.assign(payload);
  pos_ += kHeaderSize + payload_len;
  return Status::OK();
}

}  // namespace net
}  // namespace harmony
