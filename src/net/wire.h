#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"
#include "core/completion.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "txn/procedure.h"

namespace harmony {

struct Block;  // chain/block.h (REPLICATE frames carry whole blocks)

namespace net {

/// HarmonyBC wire protocol v2 — a versioned, length-prefixed binary frame
/// format spoken between NetClient and NetServer (docs/NET.md for the
/// contracts, docs/FORMATS.md for the authoritative byte-level reference).
///
/// Every frame is a fixed 20-byte header followed by `payload_len` bytes:
///
///   offset  size  field
///   0       4     magic        "HBC1" (0x31434248 little-endian)
///   4       1     version      kWireV1 or kWireV2 (see below)
///   5       1     opcode       Opcode
///   6       2     flags        reserved, must be 0
///   8       4     payload_len  bytes following the header
///   12      4     payload_crc  CRC32 of the payload (0 when empty)
///   16      4     header_crc   CRC32 of header bytes [0, 16)
///
/// The header CRC makes desynchronization detectable before `payload_len`
/// is trusted: a corrupt or misaligned header fails the CRC instead of
/// committing the reader to a garbage-length read. Payload encodings reuse
/// the little-endian helpers in common/codec.h (the same codec the block
/// log uses), and SUBMIT payloads are exactly BlockCodec::EncodeTxn.
///
/// ## Version negotiation (v1 ⇄ v2)
/// The version is stamped *per frame*, by opcode: frames carrying a v1
/// opcode (SUBMIT..ERROR) are stamped kWireV1, the batch opcodes
/// (BATCH_SUBMIT/BATCH_RECEIPT) kWireV2. Readers accept both versions, so
/// a v2 endpoint interoperates with a v1 peer for as long as neither side
/// batches — a v1 server only ever sees v1 frames from a non-batching v2
/// client, and a server never sends BATCH_RECEIPT to a connection that has
/// not itself sent BATCH_SUBMIT. A batch opcode inside a v1-stamped frame
/// is a protocol violation.
inline constexpr uint32_t kWireMagic = 0x31434248;  // "HBC1"
inline constexpr uint8_t kWireV1 = 1;
inline constexpr uint8_t kWireV2 = 2;
inline constexpr uint8_t kWireVersion = kWireV2;
inline constexpr size_t kHeaderSize = 20;
/// Frames advertising a larger payload are rejected as corrupt before any
/// allocation — the cap bounds per-connection memory against hostile or
/// desynchronized peers. Must admit the largest admissible SUBMIT
/// (AdmissionOptions::max_blob_bytes plus slack), a full BATCH_SUBMIT, and
/// the STATS snapshot.
inline constexpr uint32_t kMaxFramePayload = 2u << 20;
/// Per-frame bound on BATCH_SUBMIT / BATCH_RECEIPT entry counts; a count
/// beyond this (or beyond what payload_len can carry) is a protocol error.
inline constexpr uint32_t kMaxBatchTxns = 4096;

enum class Opcode : uint8_t {
  kOpSubmit = 1,   ///< C -> S: one TxnRequest (BlockCodec::EncodeTxn)
  kOpReceipt = 2,  ///< S -> C: the TxnReceipt for one SUBMIT
  kOpSync = 3,     ///< both ways: token echo once prior receipts delivered
  kOpStats = 4,    ///< C -> S: empty; S -> C: WireStats
  kOpError = 5,    ///< S -> C: WireError (busy / overloaded / corrupt)
  // --- wire v2 ---
  kOpBatchSubmit = 6,   ///< C -> S: u32 count + count x EncodeTxn
  kOpBatchReceipt = 7,  ///< S -> C: u32 count + count x length-prefixed
                        ///<         receipt entries (coalesced per flush)
  kOpMetrics = 8,       ///< C -> S: empty; S -> C: EncodeMetrics — the
                        ///<         STATS v2 payload: the server's metrics
                        ///<         registry snapshot (per-stage histograms,
                        ///<         slow-txn ring; docs/OBSERVABILITY.md)
  // --- replication (docs/REPLICATION.md; follower dials the leader) ---
  kOpReplJoin = 9,      ///< F -> L: WireReplJoin — marks the connection as
                        ///<         a replication peer and reports the
                        ///<         follower's durable chain tip
  kOpReplicate = 10,    ///< L -> F: WireReplicate — one sealed block (the
                        ///<         exact v3 record bytes the log persists)
  kOpReplicateAck = 11, ///< F -> L: u64 block id, cumulative — "everything
                        ///<         through this id is applied here"
  kOpReplSnapshot = 12, ///< L -> F: WireSnapshot — state rows at a
                        ///<         checkpointed base block, for followers
                        ///<         too far behind the log-tail window
  // --- cluster observability (docs/OBSERVABILITY.md) ---
  kOpHealth = 13,       ///< C -> S: empty; S -> C: WireHealth — role,
                        ///<         chain position, peer count; cheap
                        ///<         enough to poll every second
  kOpEvents = 14,       ///< C -> S: u64 cursor; S -> C: next cursor +
                        ///<         count-capped obs::EventRecord entries
                        ///<         from the instance's event ring
};

const char* OpcodeName(Opcode op);

/// The version an Opcode's frames are stamped with (see the negotiation
/// comment above).
inline uint8_t WireVersionFor(Opcode op) {
  return op >= Opcode::kOpBatchSubmit ? kWireV2 : kWireV1;
}

struct Frame {
  Opcode opcode = Opcode::kOpError;
  std::string payload;
};

/// ERROR payload. `client_seq` != 0 scopes the error to one in-flight
/// SUBMIT (e.g. ERROR{busy} from session flow control — the submit was
/// rejected, the connection lives on); 0 means the connection itself is
/// being terminated after this frame flushes (overloaded, corrupt,
/// protocol violation).
struct WireError {
  Status::Code code = Status::Code::kAborted;
  uint64_t client_seq = 0;
  std::string message;
};

/// STATS payload: the connection's server-side SessionStats snapshot plus
/// the server-wide IngestStats and chain position, taken relaxed (counters
/// may be mid-update; they are monotonic, not a consistent cut).
struct WireStats {
  // This connection's session.
  uint64_t sess_submitted = 0;
  uint64_t sess_committed = 0;
  uint64_t sess_logic_aborted = 0;
  uint64_t sess_dropped = 0;
  uint64_t sess_rejected = 0;
  uint64_t sess_latency_sum_us = 0;
  uint64_t sess_latency_max_us = 0;
  uint64_t sess_inflight = 0;
  // Server-wide ingress.
  uint64_t ing_submitted = 0;
  uint64_t ing_admitted = 0;
  uint64_t ing_duplicates = 0;
  uint64_t ing_rejected = 0;
  uint64_t ing_rate_limited = 0;
  uint64_t ing_demoted = 0;
  uint64_t ing_backpressured = 0;
  uint64_t ing_retries_enqueued = 0;
  uint64_t ing_retries_dropped = 0;
  uint64_t ing_sealed_blocks = 0;
  uint64_t ing_sealed_txns = 0;
  uint64_t ing_sealed_high = 0;
  uint64_t ing_sealed_normal = 0;
  uint64_t ing_sealed_low = 0;
  uint64_t ing_sealed_retry = 0;
  // Chain position.
  uint64_t height = 0;
  uint64_t pending_receipts = 0;
  uint64_t queue_depth = 0;
};

/// Frames one payload: header (magic/version/opcode/len/CRCs) + payload.
std::string EncodeFrame(Opcode op, std::string_view payload);

/// Rebuilds a Status from its wire (code, message) pair.
Status WireStatus(Status::Code code, std::string msg);

// --- payload codecs ---------------------------------------------------------
// SUBMIT uses BlockCodec::EncodeTxn/DecodeTxn directly (chain/block.h): the
// wire ships the exact bytes the block log persists. BATCH_SUBMIT is a u32
// count followed by that many EncodeTxn encodings back to back.

void EncodeReceipt(const TxnReceipt& r, std::string* out);
bool DecodeReceipt(std::string_view payload, TxnReceipt* out);

void EncodeError(const WireError& e, std::string* out);
bool DecodeError(std::string_view payload, WireError* out);

void EncodeSync(uint64_t token, std::string* out);
bool DecodeSync(std::string_view payload, uint64_t* token);

void EncodeStats(const WireStats& s, std::string* out);
bool DecodeStats(std::string_view payload, WireStats* out);

/// METRICS (STATS v2): a whole obs::MetricsSnapshot. The flat v1 STATS
/// payload stays frozen — v1 peers keep decoding it — and the registry
/// rides this separate v2 opcode instead of growing the v1 field list
/// (named variable-length data cannot hide in trailing u64s). Decode
/// rejects entry counts beyond kMaxMetricsEntries and bucket indexes
/// beyond the histogram range before sizing anything.
inline constexpr uint32_t kMaxMetricsEntries = 4096;
void EncodeMetrics(const obs::MetricsSnapshot& m, std::string* out);
bool DecodeMetrics(std::string_view payload, obs::MetricsSnapshot* out);

/// BATCH_SUBMIT: decodes the whole payload or fails (count 0, count over
/// kMaxBatchTxns, short/trailing bytes are all protocol errors).
void EncodeBatchSubmit(const std::vector<TxnRequest>& txns, std::string* out);
bool DecodeBatchSubmit(std::string_view payload,
                       std::vector<TxnRequest>* out);

/// BATCH_RECEIPT entries are length-prefixed EncodeReceipt encodings so the
/// server can append them to a per-connection buffer as receipts resolve
/// and stamp the count at flush time (see NetServer's coalescing).
void AppendBatchReceiptEntry(const TxnReceipt& r, std::string* out);
/// Builds a "u32 count + concatenated bytes" batch payload — the shared
/// outer layout of BATCH_SUBMIT and BATCH_RECEIPT (both sides accumulate
/// bytes incrementally and stamp the count at flush time).
std::string SealBatchPayload(uint32_t count, std::string_view entries);
bool DecodeBatchReceipt(std::string_view payload,
                        std::vector<TxnReceipt>* out);

// --- replication payloads (src/repl/, docs/REPLICATION.md) ------------------

/// JOIN: the follower's first frame on a replication link. `node` names the
/// follower (diagnostics only); `last_block_id` is its durable chain tip, so
/// the leader can resume the stream (or send a snapshot) from the right
/// place.
struct WireReplJoin {
  std::string node;
  BlockId last_block_id = 0;
};
inline constexpr uint32_t kMaxReplNodeName = 256;
void EncodeReplJoin(const WireReplJoin& j, std::string* out);
bool DecodeReplJoin(std::string_view payload, WireReplJoin* out);

/// REPLICATE: `u64 block_id` + length-prefixed v3 record bytes
/// (BlockCodec::Encode — the wire ships the exact bytes the block log
/// persists, like SUBMIT does for txns). Decode parses the record and
/// rejects an outer id that disagrees with the decoded header, so a frame
/// that passes the codec is internally consistent before the follower
/// touches it.
void EncodeReplicate(const Block& b, std::string* out);
bool DecodeReplicate(std::string_view payload, Block* out);

/// REPLICATE_ACK: u64 block id, cumulative.
void EncodeReplAck(BlockId id, std::string* out);
bool DecodeReplAck(std::string_view payload, BlockId* id);

/// SNAPSHOT: the leader's state rows as of checkpointed block `base_block`
/// (whose block hash is `tip_hash` — the follower anchors its chain
/// verifier there), plus the leader's current tip for progress reporting.
/// Single frame: a snapshot that cannot fit the 2 MiB frame cap is not
/// sent (the leader streams the log tail instead).
struct WireSnapshot {
  BlockId base_block = 0;
  Digest tip_hash{};
  BlockId leader_tip = 0;
  std::vector<std::pair<Key, std::string>> rows;
};
inline constexpr uint32_t kMaxSnapshotRows = 65536;
void EncodeSnapshot(const WireSnapshot& s, std::string* out);
bool DecodeSnapshot(std::string_view payload, WireSnapshot* out);

// --- cluster observability payloads (docs/OBSERVABILITY.md) -----------------

/// HEALTH: one node's self-report — who it is, where its chain stands, and
/// who it talks to. Request payload is empty; the reply is cheap to build
/// (no histogram walk) so pollers can hit it every second.
struct WireHealth {
  enum Role : uint8_t { kStandalone = 0, kLeader = 1, kFollower = 2 };
  uint8_t role = kStandalone;
  std::string node;         ///< node name ("" for standalone/leader default)
  uint64_t height = 0;      ///< committed chain height
  uint64_t durable_tip = 0; ///< follower: last applied block; leader: height
  std::string leader_addr;  ///< follower: where submits are redirected
  uint32_t peer_count = 0;  ///< leader: connected replication peers
  uint64_t uptime_us = 0;   ///< microseconds since the instance opened
};
inline constexpr uint32_t kMaxLeaderAddr = 256;
void EncodeHealth(const WireHealth& h, std::string* out);
bool DecodeHealth(std::string_view payload, WireHealth* out);

/// EVENTS: request is exactly a u64 cursor (the value a previous reply
/// returned, or 0 for "from the oldest retained event"); the reply is the
/// next cursor followed by a count-capped run of event entries. Decode
/// applies the kOpMetrics hostile-input discipline: counts are checked for
/// plausibility against the remaining bytes before sizing anything, detail
/// strings are length-capped, and trailing bytes are a protocol error.
inline constexpr uint32_t kMaxEventEntries = 1024;
inline constexpr uint32_t kMaxEventDetail = 120;  // == obs::EventLog::kMaxDetail
void EncodeEventsReq(uint64_t cursor, std::string* out);
bool DecodeEventsReq(std::string_view payload, uint64_t* cursor);
void EncodeEvents(uint64_t next_cursor,
                  const std::vector<obs::EventRecord>& events,
                  std::string* out);
bool DecodeEvents(std::string_view payload, uint64_t* next_cursor,
                  std::vector<obs::EventRecord>* out);

/// Incremental frame reassembly over a byte stream: Feed() whatever the
/// socket produced, then drain complete frames with Next() until it
/// returns NotFound ("need more bytes").
///
///   - OK          -> *out holds one complete, CRC-verified frame
///   - NotFound    -> incomplete; Feed() more and retry
///   - Corruption  -> bad magic/version/flags/CRC or payload_len over the
///                    cap; the stream is unrecoverable (no resync point) —
///                    close the connection.
///
/// Single-threaded: one reassembler per connection, driven only by that
/// connection's reader.
class FrameReassembler {
 public:
  explicit FrameReassembler(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  Status Next(Frame* out);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  size_t max_payload_;
};

}  // namespace net
}  // namespace harmony
