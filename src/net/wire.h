#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/codec.h"
#include "common/status.h"
#include "core/completion.h"
#include "txn/procedure.h"

namespace harmony {
namespace net {

/// HarmonyBC wire protocol v1 — a versioned, length-prefixed binary frame
/// format spoken between NetClient and NetServer (see docs/NET.md).
///
/// Every frame is a fixed 20-byte header followed by `payload_len` bytes:
///
///   offset  size  field
///   0       4     magic        "HBC1" (0x31434248 little-endian)
///   4       1     version      kWireVersion
///   5       1     opcode       Opcode
///   6       2     flags        reserved, must be 0
///   8       4     payload_len  bytes following the header
///   12      4     payload_crc  CRC32 of the payload (0 when empty)
///   16      4     header_crc   CRC32 of header bytes [0, 16)
///
/// The header CRC makes desynchronization detectable before `payload_len`
/// is trusted: a corrupt or misaligned header fails the CRC instead of
/// committing the reader to a garbage-length read. Payload encodings reuse
/// the little-endian helpers in common/codec.h (the same codec the block
/// log uses), and SUBMIT payloads are exactly BlockCodec::EncodeTxn.
inline constexpr uint32_t kWireMagic = 0x31434248;  // "HBC1"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 20;
/// Frames advertising a larger payload are rejected as corrupt before any
/// allocation — the cap bounds per-connection memory against hostile or
/// desynchronized peers. Must admit the largest admissible SUBMIT
/// (AdmissionOptions::max_blob_bytes plus slack) and the STATS snapshot.
inline constexpr uint32_t kMaxFramePayload = 2u << 20;

enum class Opcode : uint8_t {
  kSubmit = 1,   ///< client -> server: one TxnRequest (BlockCodec::EncodeTxn)
  kReceipt = 2,  ///< server -> client: the TxnReceipt for one SUBMIT
  kSync = 3,     ///< both ways: token echo once prior receipts are delivered
  kStats = 4,    ///< client -> server: empty; server -> client: WireStats
  kError = 5,    ///< server -> client: WireError (busy / overloaded / corrupt)
};

const char* OpcodeName(Opcode op);

struct Frame {
  Opcode opcode = Opcode::kError;
  std::string payload;
};

/// ERROR payload. `client_seq` != 0 scopes the error to one in-flight
/// SUBMIT (e.g. ERROR{busy} from session flow control — the submit was
/// rejected, the connection lives on); 0 means the connection itself is
/// being terminated after this frame flushes (overloaded, corrupt,
/// protocol violation).
struct WireError {
  Status::Code code = Status::Code::kAborted;
  uint64_t client_seq = 0;
  std::string message;
};

/// STATS payload: the connection's server-side SessionStats snapshot plus
/// the server-wide IngestStats and chain position, taken relaxed (counters
/// may be mid-update; they are monotonic, not a consistent cut).
struct WireStats {
  // This connection's session.
  uint64_t sess_submitted = 0;
  uint64_t sess_committed = 0;
  uint64_t sess_logic_aborted = 0;
  uint64_t sess_dropped = 0;
  uint64_t sess_rejected = 0;
  uint64_t sess_latency_sum_us = 0;
  uint64_t sess_latency_max_us = 0;
  uint64_t sess_inflight = 0;
  // Server-wide ingress.
  uint64_t ing_submitted = 0;
  uint64_t ing_admitted = 0;
  uint64_t ing_duplicates = 0;
  uint64_t ing_rejected = 0;
  uint64_t ing_rate_limited = 0;
  uint64_t ing_demoted = 0;
  uint64_t ing_backpressured = 0;
  uint64_t ing_retries_enqueued = 0;
  uint64_t ing_retries_dropped = 0;
  uint64_t ing_sealed_blocks = 0;
  uint64_t ing_sealed_txns = 0;
  uint64_t ing_sealed_high = 0;
  uint64_t ing_sealed_normal = 0;
  uint64_t ing_sealed_low = 0;
  uint64_t ing_sealed_retry = 0;
  // Chain position.
  uint64_t height = 0;
  uint64_t pending_receipts = 0;
  uint64_t queue_depth = 0;
};

/// Frames one payload: header (magic/version/opcode/len/CRCs) + payload.
std::string EncodeFrame(Opcode op, std::string_view payload);

/// Rebuilds a Status from its wire (code, message) pair.
Status WireStatus(Status::Code code, std::string msg);

// --- payload codecs ---------------------------------------------------------
// SUBMIT uses BlockCodec::EncodeTxn/DecodeTxn directly (chain/block.h): the
// wire ships the exact bytes the block log persists.

void EncodeReceipt(const TxnReceipt& r, std::string* out);
bool DecodeReceipt(std::string_view payload, TxnReceipt* out);

void EncodeError(const WireError& e, std::string* out);
bool DecodeError(std::string_view payload, WireError* out);

void EncodeSync(uint64_t token, std::string* out);
bool DecodeSync(std::string_view payload, uint64_t* token);

void EncodeStats(const WireStats& s, std::string* out);
bool DecodeStats(std::string_view payload, WireStats* out);

/// Incremental frame reassembly over a byte stream: Feed() whatever the
/// socket produced, then drain complete frames with Next() until it
/// returns NotFound ("need more bytes").
///
///   - OK          -> *out holds one complete, CRC-verified frame
///   - NotFound    -> incomplete; Feed() more and retry
///   - Corruption  -> bad magic/version/flags/CRC or payload_len over the
///                    cap; the stream is unrecoverable (no resync point) —
///                    close the connection.
///
/// Single-threaded: one reassembler per connection, driven only by that
/// connection's reader.
class FrameReassembler {
 public:
  explicit FrameReassembler(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  Status Next(Frame* out);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  size_t max_payload_;
};

}  // namespace net
}  // namespace harmony
