#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "chain/block.h"
#include "common/clock.h"
#include "obs/events.h"
#include "repl/replicator.h"

namespace harmony {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

NetServer::Reactor::~Reactor() {
  if (epoll_fd >= 0) ::close(epoll_fd);
  if (wake_fd >= 0) ::close(wake_fd);
}

NetServer::NetServer(HarmonyBC* db, NetServerOptions opts)
    : db_(db),
      opts_(std::move(opts)),
      stats_(std::make_shared<NetServerStats>()) {
  c_redirects_ = db_->metrics()->GetCounter(obs::kCounterRedirects);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + opts_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind " + opts_.bind_addr);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 512) < 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  const size_t n = std::max<size_t>(1, opts_.reactor_threads);
  reactors_.clear();
  for (size_t i = 0; i < n; i++) {
    auto r = std::make_shared<Reactor>();
    r->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    r->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r->epoll_fd < 0 || r->wake_fd < 0) {
      reactors_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Errno("epoll_create1/eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wake_fd;
    ::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->wake_fd, &ev);
    reactors_.push_back(std::move(r));
  }
  // The listener lives on reactor 0.
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.fd = listen_fd_;
  ::epoll_ctl(reactors_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);

  running_.store(true, std::memory_order_release);
  for (size_t i = 0; i < reactors_.size(); i++) {
    reactors_[i]->thread = std::thread([this, i] { ReactorLoop(i); });
  }
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Phase 1: stop the intake. Reactors keep running (they must flush
  // receipts) but ignore readable events and the listener goes away, so no
  // new transaction can enter after the drain watermark is taken.
  // listen_fd_ is owned by reactor 0's thread while it runs: it closes the
  // listener itself when it observes stopping_ (racing the close from here
  // would let accept() touch a reused fd number).
  stopping_.store(true, std::memory_order_release);
  for (auto& r : reactors_) Wake(*r);
  // Phase 2: drain. Sync() waits on the completion watermark, so every
  // transaction admitted before it returns has resolved its receipt — and
  // each resolution queued a RECEIPT frame. Then wait for the write queues
  // to reach the sockets. A reactor mid-dispatch can admit one more batch
  // after stopping_ flips, hence the loop (the second Sync covers it).
  const uint64_t deadline = NowMicros() + opts_.drain_timeout_us;
  for (;;) {
    (void)db_->Sync();  // Busy (abort livelock) is bounded by the deadline
    bool drained = true;
    for (auto& r : reactors_) {
      std::vector<std::shared_ptr<Conn>> conns;
      {
        std::lock_guard<std::mutex> lk(r->mu);
        conns.reserve(r->conns.size());
        for (auto& [fd, c] : r->conns) conns.push_back(c);
      }
      for (auto& c : conns) {
        std::lock_guard<std::mutex> lk(c->mu);
        if (c->closed) continue;
        if (c->resolved.load(std::memory_order_acquire) <
                c->submitted.load(std::memory_order_acquire) ||
            !c->outq.empty() || c->batch_count != 0) {
          drained = false;
        }
      }
      Wake(*r);  // flush whatever just got queued
    }
    if (drained || NowMicros() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: tear down.
  running_.store(false, std::memory_order_release);
  for (auto& r : reactors_) Wake(*r);
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  if (listen_fd_ >= 0) {  // reactor 0 never saw stopping_ (already joined)
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& r : reactors_) {
    std::lock_guard<std::mutex> lk(r->mu);
    // incoming first: connections accepted but never adopted by the (now
    // joined) reactor still own live fds.
    for (auto& c : r->incoming) {
      std::lock_guard<std::mutex> ck(c->mu);
      if (!c->closed) {
        c->closed = true;
        ::close(c->fd);
        stats_->closed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (auto& [fd, c] : r->conns) {
      std::lock_guard<std::mutex> ck(c->mu);
      if (!c->closed) {
        c->closed = true;
        ::close(c->fd);
        stats_->closed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    r->conns.clear();
    r->incoming.clear();
    r->dirty.clear();
  }
  reactors_.clear();
}

size_t NetServer::open_connections() const {
  size_t n = 0;
  for (const auto& r : reactors_) {
    std::lock_guard<std::mutex> lk(r->mu);
    n += r->conns.size();
  }
  return n;
}

void NetServer::Wake(Reactor& r) {
  uint64_t one = 1;
  ssize_t ignored = ::write(r.wake_fd, &one, sizeof(one));
  (void)ignored;  // EAGAIN just means a wake is already pending
}

void NetServer::ReactorLoop(size_t idx) {
  Reactor& r = *reactors_[idx];
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    // Reactor 0 owns the listener; it retires it on shutdown so no other
    // thread ever races accept() against close().
    if (idx == 0 && listen_fd_ >= 0 &&
        stopping_.load(std::memory_order_acquire)) {
      ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    const int n = ::epoll_wait(r.epoll_fd, events, 64, /*timeout_ms=*/100);
    for (int i = 0; i < n; i++) {
      const int fd = events[i].data.fd;
      if (fd == r.wake_fd) {
        uint64_t drain;
        while (::read(r.wake_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (idx == 0 && fd == listen_fd_ &&
          !stopping_.load(std::memory_order_acquire)) {
        AcceptReady();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lk(r.mu);
        auto it = r.conns.find(fd);
        if (it != r.conns.end()) conn = it->second;
      }
      if (!conn) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(r, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) FlushConn(r, conn);
      if (events[i].events & EPOLLIN) {
        if (!stopping_.load(std::memory_order_acquire)) {
          HandleReadable(r, conn);
        } else {
          // Drain phase: reads are parked, but leaving EPOLLIN armed on a
          // level-triggered set would spin this loop at 100% CPU for the
          // whole drain. Disarm it; writes still flow.
          std::lock_guard<std::mutex> lk(conn->mu);
          if (!conn->closed) {
            epoll_event ev{};
            ev.events = conn->want_write ? EPOLLOUT : 0u;
            ev.data.fd = conn->fd;
            ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
          }
        }
      }
    }
    // Deferred work queued by other threads: adopt new connections, flush
    // queues the receipt callbacks touched. Runs every iteration so inline
    // (reactor-thread) enqueues are flushed promptly too.
    std::vector<std::shared_ptr<Conn>> incoming;
    std::vector<std::weak_ptr<Conn>> dirty;
    {
      std::lock_guard<std::mutex> lk(r.mu);
      incoming.swap(r.incoming);
      dirty.swap(r.dirty);
    }
    for (auto& c : incoming) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = c->fd;
      if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, c->fd, &ev) == 0) {
        std::lock_guard<std::mutex> lk(r.mu);
        r.conns.emplace(c->fd, c);
      } else {
        std::lock_guard<std::mutex> ck(c->mu);
        c->closed = true;
        ::close(c->fd);
        stats_->closed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (auto& w : dirty) {
      if (std::shared_ptr<Conn> c = w.lock()) FlushConn(r, c);
    }
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Resource exhaustion leaves the backlogged connection pending, and
      // the level-triggered listener would re-report it immediately: back
      // off briefly instead of spinning reactor 0 at 100% CPU until an fd
      // frees up.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      // EAGAIN = drained; anything else (aborted handshake, EBADF during
      // shutdown) is not fatal to the listener either.
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const size_t target =
        next_reactor_.fetch_add(1, std::memory_order_relaxed) %
        reactors_.size();
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->owner = reactors_[target];
    conn->srv_stats = stats_;
    conn->wq_cap = opts_.max_write_queue_bytes;
    conn->reasm = FrameReassembler(opts_.max_frame_payload);
    conn->session = db_->OpenSession();
    if (db_->tracer()->enabled()) {
      conn->flush_hist = db_->tracer()->wire_flush;
    }
    conn->events = db_->events();
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);

    Reactor& r = *reactors_[target];
    {
      std::lock_guard<std::mutex> lk(r.mu);
      r.incoming.push_back(std::move(conn));
    }
    Wake(r);
  }
}

void NetServer::HandleReadable(Reactor& r, const std::shared_ptr<Conn>& conn) {
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->reasm.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConn(r, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(r, conn);
    return;
  }
  for (;;) {
    Frame frame;
    const Status st = conn->reasm.Next(&frame);
    if (st.IsNotFound()) break;
    if (!st.ok()) {
      // Unrecoverable stream (bad magic/CRC/length): tell the client why,
      // then close once the error flushes. No resync is attempted — a
      // desynchronized length-prefixed stream has no reliable frame
      // boundary to hunt for.
      stats_->corrupt_closes.fetch_add(1, std::memory_order_relaxed);
      WireError e;
      e.code = Status::Code::kCorruption;
      e.client_seq = 0;
      e.message = st.ToString();
      std::string payload;
      EncodeError(e, &payload);
      bool wake;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        wake = EnqueueLocked(*conn, Opcode::kOpError, payload);
        conn->close_after_flush = true;
      }
      (void)wake;
      FlushConn(r, conn);
      return;
    }
    stats_->frames_in.fetch_add(1, std::memory_order_relaxed);
    if (!Dispatch(conn, std::move(frame))) {
      stats_->corrupt_closes.fetch_add(1, std::memory_order_relaxed);
      WireError e;
      e.code = Status::Code::kInvalidArgument;
      e.client_seq = 0;
      e.message = "protocol violation";
      std::string payload;
      EncodeError(e, &payload);
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        EnqueueLocked(*conn, Opcode::kOpError, payload);
        conn->close_after_flush = true;
      }
      FlushConn(r, conn);
      return;
    }
  }
  FlushConn(r, conn);  // whatever dispatch queued inline
}

bool NetServer::Dispatch(const std::shared_ptr<Conn>& conn, Frame frame) {
  // Follower frontend: this node's chain is written by its leader, not by
  // clients. A deliberate, connection-terminal redirect — not a protocol
  // violation — so a client that dialed the wrong node learns where to go.
  if (!opts_.redirect_addr.empty() &&
      (frame.opcode == Opcode::kOpSubmit ||
       frame.opcode == Opcode::kOpBatchSubmit)) {
    c_redirects_->Add(1);
    db_->events()->Emit(obs::EventSeverity::kInfo, obs::EventCode::kRedirect,
                        "submit bounced to " + opts_.redirect_addr);
    WireError e;
    e.code = Status::Code::kNotSupported;
    e.client_seq = 0;
    e.message = "not leader; redirect to " + opts_.redirect_addr;
    std::string payload;
    EncodeError(e, &payload);
    std::lock_guard<std::mutex> lk(conn->mu);
    EnqueueLocked(*conn, Opcode::kOpError, payload);
    conn->close_after_flush = true;
    return true;
  }
  switch (frame.opcode) {
    case Opcode::kOpSubmit: {
      TxnRequest req;
      codec::Reader rd(frame.payload);
      if (!BlockCodec::DecodeTxn(&rd, &req) || rd.remaining() != 0) {
        return false;
      }
      // The server's clock stamps admission and latency; a caller-supplied
      // timestamp would skew rate limiting and receipt latency.
      req.submit_time_us = 0;
      stats_->submits.fetch_add(1, std::memory_order_relaxed);
      conn->submitted.fetch_add(1, std::memory_order_acq_rel);
      std::weak_ptr<Conn> weak = conn;
      conn->session->Submit(
          std::move(req),
          [weak](const TxnReceipt& receipt) { PushReceipt(weak, receipt); });
      return true;
    }
    case Opcode::kOpBatchSubmit: {
      std::vector<TxnRequest> txns;
      if (!DecodeBatchSubmit(frame.payload, &txns)) return false;
      const size_t n = txns.size();
      for (TxnRequest& req : txns) {
        // The server's clock stamps admission and latency, as for SUBMIT.
        req.submit_time_us = 0;
      }
      stats_->submits.fetch_add(n, std::memory_order_relaxed);
      stats_->batch_submits.fetch_add(1, std::memory_order_relaxed);
      conn->submitted.fetch_add(n, std::memory_order_acq_rel);
      // From now on this connection's receipts coalesce (set before the
      // submit so no receipt of this batch can race past it).
      conn->batch_mode.store(true, std::memory_order_release);
      std::weak_ptr<Conn> weak = conn;
      conn->session->SubmitBatch(
          std::move(txns),
          [weak](const TxnReceipt& receipt) { PushReceipt(weak, receipt); });
      return true;
    }
    case Opcode::kOpSync: {
      uint64_t token = 0;
      if (!DecodeSync(frame.payload, &token)) return false;
      const uint64_t watermark =
          conn->submitted.load(std::memory_order_acquire);
      std::string payload;
      EncodeSync(token, &payload);
      std::lock_guard<std::mutex> lk(conn->mu);
      if (conn->resolved.load(std::memory_order_acquire) >= watermark) {
        // Receipts covered by this ack may still sit in the coalescing
        // buffer; they must hit the queue before the ack does.
        PackBatchLocked(*conn);
        EnqueueLocked(*conn, Opcode::kOpSync, payload);
      } else {
        conn->pending_syncs.emplace_back(watermark, token);
      }
      return true;
    }
    case Opcode::kOpStats: {
      if (!frame.payload.empty()) return false;
      WireStats s;
      const SessionStats& ss = conn->session->stats();
      s.sess_submitted = ss.submitted.load(std::memory_order_relaxed);
      s.sess_committed = ss.committed.load(std::memory_order_relaxed);
      s.sess_logic_aborted = ss.logic_aborted.load(std::memory_order_relaxed);
      s.sess_dropped = ss.dropped.load(std::memory_order_relaxed);
      s.sess_rejected = ss.rejected.load(std::memory_order_relaxed);
      s.sess_latency_sum_us =
          ss.latency_sum_us.load(std::memory_order_relaxed);
      s.sess_latency_max_us =
          ss.latency_max_us.load(std::memory_order_relaxed);
      s.sess_inflight = ss.inflight.load(std::memory_order_relaxed);
      const IngestStats& is = db_->ingest_stats();
      s.ing_submitted = is.submitted.load(std::memory_order_relaxed);
      s.ing_admitted = is.admitted.load(std::memory_order_relaxed);
      s.ing_duplicates = is.duplicates.load(std::memory_order_relaxed);
      s.ing_rejected = is.rejected.load(std::memory_order_relaxed);
      s.ing_rate_limited = is.rate_limited.load(std::memory_order_relaxed);
      s.ing_demoted = is.demoted.load(std::memory_order_relaxed);
      s.ing_backpressured = is.backpressured.load(std::memory_order_relaxed);
      s.ing_retries_enqueued =
          is.retries_enqueued.load(std::memory_order_relaxed);
      s.ing_retries_dropped =
          is.retries_dropped.load(std::memory_order_relaxed);
      s.ing_sealed_blocks = is.sealed_blocks.load(std::memory_order_relaxed);
      s.ing_sealed_txns = is.sealed_txns.load(std::memory_order_relaxed);
      s.ing_sealed_high =
          is.sealed_lane_txns[static_cast<size_t>(IngestLane::kHigh)].load(
              std::memory_order_relaxed);
      s.ing_sealed_normal =
          is.sealed_lane_txns[static_cast<size_t>(IngestLane::kNormal)].load(
              std::memory_order_relaxed);
      s.ing_sealed_low =
          is.sealed_lane_txns[static_cast<size_t>(IngestLane::kLow)].load(
              std::memory_order_relaxed);
      s.ing_sealed_retry =
          is.sealed_retry_txns.load(std::memory_order_relaxed);
      s.height = db_->height();
      s.pending_receipts = db_->pending_receipts();
      s.queue_depth = db_->queue_depth();
      std::string payload;
      EncodeStats(s, &payload);
      std::lock_guard<std::mutex> lk(conn->mu);
      EnqueueLocked(*conn, Opcode::kOpStats, payload);
      return true;
    }
    case Opcode::kOpMetrics: {
      // STATS v2: ship the whole metrics registry snapshot (per-stage
      // histograms, slow-txn ring). Gauges are refreshed by CollectMetrics.
      if (!frame.payload.empty()) return false;
      std::string payload;
      EncodeMetrics(db_->CollectMetrics(), &payload);
      std::lock_guard<std::mutex> lk(conn->mu);
      EnqueueLocked(*conn, Opcode::kOpMetrics, payload);
      return true;
    }
    case Opcode::kOpHealth: {
      // One frame answering "which node is this and is it keeping up" —
      // role, chain height, durable tip, peer count (docs/OBSERVABILITY.md).
      if (!frame.payload.empty()) return false;
      WireHealth h;
      h.role = replicator_ != nullptr          ? WireHealth::kLeader
               : !opts_.redirect_addr.empty()  ? WireHealth::kFollower
                                               : WireHealth::kStandalone;
      h.node = opts_.node_name;
      h.height = db_->height();
      h.durable_tip = db_->replica()->block_store()->last_block_id();
      h.leader_addr = opts_.redirect_addr;
      h.peer_count = replicator_ != nullptr
                         ? static_cast<uint32_t>(replicator_->num_peers())
                         : 0;
      h.uptime_us = db_->uptime_us();
      std::string payload;
      EncodeHealth(h, &payload);
      std::lock_guard<std::mutex> lk(conn->mu);
      EnqueueLocked(*conn, Opcode::kOpHealth, payload);
      return true;
    }
    case Opcode::kOpEvents: {
      uint64_t cursor = 0;
      if (!DecodeEventsReq(frame.payload, &cursor)) return false;
      std::vector<obs::EventRecord> recs;
      const uint64_t next =
          db_->events()->Since(cursor, kMaxEventEntries, &recs);
      std::string payload;
      EncodeEvents(next, recs, &payload);
      std::lock_guard<std::mutex> lk(conn->mu);
      EnqueueLocked(*conn, Opcode::kOpEvents, payload);
      return true;
    }
    case Opcode::kOpReplJoin: {
      // A follower announcing itself (docs/REPLICATION.md). Only meaningful
      // on a leader that wired a replicator in.
      if (replicator_ == nullptr) return false;
      WireReplJoin join;
      if (!DecodeReplJoin(frame.payload, &join)) return false;
      conn->is_repl_peer = true;
      conn->peer_node = join.node;
      // The replicator sends through this closure; it mirrors PushFrame but
      // stays valid without the NetServer (weak conn + shared owner), and
      // reports the connection's death so the replicator stops pumping.
      std::weak_ptr<Conn> weak = conn;
      auto send = [weak](Opcode op, std::string_view payload) -> bool {
        std::shared_ptr<Conn> c = weak.lock();
        if (!c) return false;
        std::shared_ptr<Reactor> owner = c->owner;
        bool wake;
        {
          std::lock_guard<std::mutex> lk(c->mu);
          if (c->closed || c->overloaded) return false;
          wake = EnqueueLocked(*c, op, payload);
        }
        if (wake) {
          {
            std::lock_guard<std::mutex> lk(owner->mu);
            owner->dirty.push_back(c);
          }
          Wake(*owner);
        }
        return true;
      };
      // May build a snapshot (drain + state scan) on this reactor thread —
      // a join-time cost borne once per fresh follower, not per frame.
      replicator_->AddPeer(join.node, join.last_block_id, std::move(send));
      return true;
    }
    case Opcode::kOpReplicateAck: {
      if (replicator_ == nullptr || !conn->is_repl_peer) return false;
      BlockId acked = 0;
      if (!DecodeReplAck(frame.payload, &acked)) return false;
      replicator_->OnAck(conn->peer_node, acked);
      return true;
    }
    case Opcode::kOpReplicate:
    case Opcode::kOpReplSnapshot:
      return false;  // leader-to-follower opcodes; never valid inbound
    case Opcode::kOpReceipt:
    case Opcode::kOpBatchReceipt:
    case Opcode::kOpError:
      return false;  // server-to-client opcodes; a client must not send them
  }
  return false;
}

void NetServer::SealOverloadedLocked(Conn& conn) {
  // Slow consumer: seal the queue with one terminal ERROR{overloaded}
  // frame and close once it flushes. Receipts already queued still go
  // out; this one (and later ones) are lost *with the connection* — the
  // client observes the close and fails its pending tickets, so nothing
  // is silently dropped on a connection that looks healthy.
  conn.overloaded = true;
  conn.close_after_flush = true;
  conn.srv_stats->overloaded_closes.fetch_add(1, std::memory_order_relaxed);
  if (conn.events != nullptr) {
    conn.events->Emit(obs::EventSeverity::kWarn,
                      obs::EventCode::kOverloadSeal,
                      "write queue over " + std::to_string(conn.wq_cap) +
                          " bytes");
  }
  WireError e;
  e.code = Status::Code::kBusy;
  e.client_seq = 0;
  e.message = "overloaded: write queue over " + std::to_string(conn.wq_cap) +
              " bytes";
  std::string epayload;
  EncodeError(e, &epayload);
  std::string eframe = EncodeFrame(Opcode::kOpError, epayload);
  conn.out_bytes += eframe.size();
  conn.outq.push_back(std::move(eframe));
  conn.outq_stamps.push_back(conn.flush_hist != nullptr ? NowMicros() : 0);
}

bool NetServer::EnqueueLocked(Conn& conn, Opcode op,
                              std::string_view payload) {
  if (conn.closed || conn.overloaded) return false;
  std::string frame = EncodeFrame(op, payload);
  if (conn.out_bytes + conn.batch_entries.size() + frame.size() >
      conn.wq_cap) {
    SealOverloadedLocked(conn);
    return !conn.want_write;
  }
  conn.out_bytes += frame.size();
  conn.outq.push_back(std::move(frame));
  conn.outq_stamps.push_back(conn.flush_hist != nullptr ? NowMicros() : 0);
  conn.srv_stats->frames_out.fetch_add(1, std::memory_order_relaxed);
  return !conn.want_write;
}

void NetServer::PackBatchLocked(Conn& conn) {
  if (conn.batch_count == 0 || conn.closed || conn.overloaded) return;
  // Take the buffer first so EnqueueLocked's cap check does not count the
  // same bytes twice (once buffered, once framed).
  const std::string entries = std::move(conn.batch_entries);
  uint32_t left = conn.batch_count;
  conn.batch_entries.clear();
  conn.batch_count = 0;
  // Split the buffered entries into frames bounded by the batch-count and
  // frame-payload caps (entries are length-prefixed, so the split walks
  // the prefixes). Usually this emits exactly one frame.
  std::string_view rest = entries;
  while (left > 0) {
    size_t bytes = 0;
    uint32_t count = 0;
    while (count < left && count < kMaxBatchTxns) {
      uint32_t entry_len = 0;
      std::memcpy(&entry_len, rest.data() + bytes, 4);
      const size_t next = bytes + 4 + entry_len;
      if (count > 0 && 4 + next > kMaxFramePayload) break;
      bytes = next;
      count++;
    }
    const std::string payload =
        SealBatchPayload(count, rest.substr(0, bytes));
    rest.remove_prefix(bytes);
    left -= count;
    conn.srv_stats->batch_receipts.fetch_add(1, std::memory_order_relaxed);
    EnqueueLocked(conn, Opcode::kOpBatchReceipt, payload);
    if (conn.overloaded) break;  // sealed mid-pack; the rest dies with conn
  }
}

void NetServer::PushFrame(const std::shared_ptr<Conn>& conn, Opcode op,
                          std::string_view payload) {
  bool wake;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    wake = EnqueueLocked(*conn, op, payload);
  }
  if (wake) {
    Reactor& r = *conn->owner;
    {
      std::lock_guard<std::mutex> lk(r.mu);
      r.dirty.push_back(conn);
    }
    Wake(r);
  }
}

void NetServer::PushReceipt(const std::weak_ptr<Conn>& weak,
                            const TxnReceipt& receipt) {
  std::shared_ptr<Conn> conn = weak.lock();
  if (!conn) return;  // connection already gone; the receipt dies with it
  // Hold the owner alive for the wake below even if the server is tearing
  // down concurrently.
  std::shared_ptr<Reactor> owner = conn->owner;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    std::string payload;
    if (conn->batch_mode.load(std::memory_order_acquire)) {
      // Coalescing path: buffer the entry; the owning reactor packs the
      // buffer into BATCH_RECEIPT frame(s) on its next flush, so receipts
      // resolving between flushes share one frame instead of one each.
      // Busy rejections ride along as kRejected entries — the batch reply
      // subsumes the single-submit ERROR{busy} mapping.
      if (!conn->closed && !conn->overloaded) {
        const size_t before = conn->batch_entries.size();
        AppendBatchReceiptEntry(receipt, &conn->batch_entries);
        if (conn->out_bytes + conn->batch_entries.size() > conn->wq_cap) {
          conn->batch_entries.resize(before);  // dies with the connection
          SealOverloadedLocked(*conn);
          wake = !conn->want_write;
        } else {
          conn->batch_count++;
          conn->srv_stats->receipts.fetch_add(1, std::memory_order_relaxed);
          // One wake per coalescing window: the first buffered entry asks
          // the reactor to flush; followers are picked up by that flush.
          wake = conn->batch_count == 1 && !conn->want_write;
        }
      }
    } else if (receipt.outcome == ReceiptOutcome::kRejected &&
               receipt.status.IsBusy()) {
      // Flow control (session inflight cap, rate limiting, mempool
      // backpressure) surfaces as ERROR{busy} scoped to the submit.
      WireError e;
      e.code = Status::Code::kBusy;
      e.client_seq = receipt.client_seq;
      e.message = receipt.status.message();
      EncodeError(e, &payload);
      wake = EnqueueLocked(*conn, Opcode::kOpError, payload);
      conn->srv_stats->busy_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      EncodeReceipt(receipt, &payload);
      wake = EnqueueLocked(*conn, Opcode::kOpReceipt, payload);
      conn->srv_stats->receipts.fetch_add(1, std::memory_order_relaxed);
    }
    // resolved advances under mu so a concurrent SYNC registration either
    // sees the new count or leaves an entry for this flush to ack.
    const uint64_t resolved =
        conn->resolved.fetch_add(1, std::memory_order_acq_rel) + 1;
    for (size_t i = 0; i < conn->pending_syncs.size();) {
      if (conn->pending_syncs[i].first <= resolved) {
        // The ack promises every covered receipt has been *queued ahead of
        // it* — flush the coalescing buffer first so the ack cannot
        // overtake receipts still waiting to be packed.
        PackBatchLocked(*conn);
        std::string ack;
        EncodeSync(conn->pending_syncs[i].second, &ack);
        wake = EnqueueLocked(*conn, Opcode::kOpSync, ack) || wake;
        conn->pending_syncs.erase(conn->pending_syncs.begin() +
                                  static_cast<long>(i));
      } else {
        i++;
      }
    }
  }
  if (wake) {
    {
      std::lock_guard<std::mutex> lk(owner->mu);
      owner->dirty.push_back(conn);
    }
    Wake(*owner);
  }
}

void NetServer::FlushConn(Reactor& r, const std::shared_ptr<Conn>& conn) {
  bool close = false;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    // Coalesce: whatever receipts accumulated since the last flush leave
    // as BATCH_RECEIPT frame(s) now.
    PackBatchLocked(*conn);
    uint64_t oldest_sent_stamp = 0;  // frames drain FIFO: first pop = oldest
    size_t sent_frames = 0;
    while (!conn->outq.empty()) {
      const std::string& front = conn->outq.front();
      // MSG_NOSIGNAL: a peer that vanished mid-flush must surface as EPIPE
      // on this connection, not as a process-wide SIGPIPE.
      const ssize_t n =
          ::send(conn->fd, front.data() + conn->out_off,
                 front.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        if (conn->out_off == front.size()) {
          conn->out_bytes -= front.size();
          conn->out_off = 0;
          conn->outq.pop_front();
          if (const uint64_t stamp = conn->outq_stamps.front(); stamp != 0) {
            if (oldest_sent_stamp == 0) oldest_sent_stamp = stamp;
            sent_frames++;
          }
          conn->outq_stamps.pop_front();
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close = true;  // broken pipe etc.
      break;
    }
    if (sent_frames > 0 && conn->flush_hist != nullptr) {
      // One clock read per flush: record the oldest drained frame's
      // enqueue -> socket-write latency (the worst of this batch — later
      // frames waited strictly less).
      const uint64_t now = NowMicros();
      conn->flush_hist->Record(now > oldest_sent_stamp
                                   ? now - oldest_sent_stamp
                                   : 0);
    }
    if (!close && conn->outq.empty() && conn->close_after_flush) close = true;
    if (!close) {
      const bool want = !conn->outq.empty();
      if (want != conn->want_write) {
        epoll_event ev{};
        // No EPOLLIN during the Stop() drain — reads are parked and a
        // level-triggered readable event would spin the loop.
        ev.events = (stopping_.load(std::memory_order_acquire) ? 0u
                                                               : EPOLLIN) |
                    (want ? EPOLLOUT : 0u);
        ev.data.fd = conn->fd;
        ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->want_write = want;
      }
    }
  }
  if (close) CloseConn(r, conn);
}

void NetServer::CloseConn(Reactor& r, const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
  }
  // is_repl_peer is owned by this (the owning) reactor; no conn->mu needed.
  if (conn->is_repl_peer && replicator_ != nullptr) {
    replicator_->RemovePeer(conn->peer_node);
  }
  stats_->closed.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(r.mu);
  r.conns.erase(conn->fd);
}

}  // namespace net
}  // namespace harmony
