#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "core/session.h"
#include "net/wire.h"

namespace harmony {
namespace net {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t max_frame_payload = kMaxFramePayload;
  /// Submit coalescing (wire v2): > 1 buffers Submit()s and ships them as
  /// one BATCH_SUBMIT frame once this many are pending (clamped to
  /// kMaxBatchTxns) — or once the oldest buffered submit has waited
  /// batch_max_delay_us. 1 disables batching (pure wire-v1 traffic; use
  /// this against pre-batching servers). The Submit -> TxnTicket surface
  /// is unchanged either way.
  size_t batch_max_txns = 1;
  /// Latency bound on coalescing: a partial batch is flushed once its
  /// oldest submit is this old. 0 flushes on the next Submit or Sync only.
  uint64_t batch_max_delay_us = 200;
};

/// Blocking + callback client for the HarmonyBC wire protocol — the remote
/// mirror of Session::Submit/TxnTicket:
///
///   auto client = net::NetClient::Connect({.host = "...", .port = p});
///   TxnTicket t = (*client)->Submit({.proc_id = 1, .args = {{a, b, amt}}});
///   const TxnReceipt& r = t.Wait();       // same receipt type as in-process
///
/// One TCP connection, one server-side session. Submit stamps a
/// monotonically increasing client_seq (callers may pre-set one; a seq
/// already in flight on this connection is rejected locally), encodes the
/// request with the block codec, and frames it onto the socket. A
/// background reader thread resolves tickets from RECEIPT / ERROR frames.
///
/// Receipt fidelity: outcome/status/block_id/retries arrive exactly as the
/// server resolved them. `latency_us` is rewritten to the *wire* round trip
/// (local submit -> receipt decoded) so remote callers measure what they
/// actually experienced, clock skew excluded. Callbacks run on the reader
/// thread and must not block.
///
/// If the connection drops (server close, overload eviction, corrupt
/// stream), every in-flight ticket resolves as kDropped with the close
/// reason — receipts are never silently lost; "dropped" here means "fate
/// unknown to this client", exactly like the in-process Recover()/shutdown
/// contract.
///
/// Thread-safe: Submit/Sync/Stats may be called from any thread.
class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Connect(
      const NetClientOptions& opts);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  TxnTicket Submit(TxnRequest req) { return Submit(std::move(req), nullptr); }
  TxnTicket Submit(TxnRequest req, ReceiptCallback cb);

  /// Waits until every receipt for Submits that returned before this call
  /// has been delivered to this client (server-side per-connection
  /// watermark + wire round trip). False on timeout or connection loss.
  bool Sync(uint64_t timeout_us);

  /// Fetches the server's STATS snapshot for this connection's session.
  Result<WireStats> Stats(uint64_t timeout_us);

  /// Fetches the server's metrics registry snapshot (STATS v2: per-stage
  /// histograms, slow-txn ring — docs/OBSERVABILITY.md). A v1 server does
  /// not know the METRICS opcode and closes with ERROR{corrupt}; that
  /// surfaces here as the connection-loss status, never as a hang.
  Result<obs::MetricsSnapshot> Metrics(uint64_t timeout_us);

  /// Fetches the node's HEALTH self-report (role, chain position, peer
  /// count — docs/OBSERVABILITY.md). Cheap on the server; poll freely.
  Result<WireHealth> Health(uint64_t timeout_us);

  /// One kOpEvents exchange: the retained events from `cursor` on plus the
  /// cursor to pass next time (tail -f loop: feed next_cursor back in).
  struct EventsBatch {
    uint64_t next_cursor = 0;
    std::vector<obs::EventRecord> events;
  };
  Result<EventsBatch> Events(uint64_t cursor, uint64_t timeout_us);

  /// Local aggregate receipt counters (inflight included), mirroring
  /// Session::stats() for the remote session.
  const SessionStats& stats() const { return *stats_; }

  bool connected() const { return !broken_.load(std::memory_order_acquire); }

 private:
  NetClient() : stats_(std::make_shared<SessionStats>()) {}

  void ReaderLoop();
  void FlusherLoop();
  /// Sends the buffered batch now (no-op when empty). Called by Submit at
  /// the size bound, by the flusher at the delay bound, and by Sync/Stats/
  /// the destructor so nothing they promise is still sitting local.
  void FlushBatch();
  /// Fails every pending ticket and sync/stats waiter with `why`.
  void BreakConnection(const Status& why);
  Status WriteFrame(Opcode op, std::string_view payload);
  void ResolveSeq(uint64_t client_seq, const TxnReceipt& receipt);

  int fd_ = -1;
  size_t max_frame_payload_ = kMaxFramePayload;
  size_t batch_max_txns_ = 1;
  uint64_t batch_max_delay_us_ = 0;
  std::shared_ptr<SessionStats> stats_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> next_sync_token_{0};
  std::atomic<bool> broken_{false};
  std::thread reader_;

  /// Coalescing buffer: EncodeTxn bytes of Submit()s not yet framed. The
  /// flusher thread enforces the delay bound; Submit enforces the size
  /// bound inline. Buffered submits are already registered in pending_, so
  /// connection loss fails them like any other in-flight ticket.
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::string batch_buf_;
  uint32_t batch_count_ = 0;
  uint64_t batch_oldest_us_ = 0;
  bool flusher_stop_ = false;
  std::thread flusher_;

  std::mutex write_mu_;       ///< serializes whole-frame socket writes
  std::mutex stats_call_mu_;  ///< one STATS exchange at a time (no corr. id)
  std::mutex metrics_call_mu_;  ///< likewise for METRICS
  std::mutex health_call_mu_;   ///< likewise for HEALTH
  std::mutex events_call_mu_;   ///< likewise for EVENTS

  std::mutex mu_;  ///< pending map + sync/stats/metrics rendezvous
  std::condition_variable cv_;
  struct PendingEntry {
    std::shared_ptr<PendingTxn> entry;
    uint64_t send_time_us = 0;
  };
  std::unordered_map<uint64_t, PendingEntry> pending_;  ///< by client_seq
  std::unordered_set<uint64_t> acked_syncs_;
  bool stats_ready_ = false;
  bool metrics_ready_ = false;
  bool health_ready_ = false;
  bool events_ready_ = false;
  /// Requests whose caller gave up (timeout): replies arrive in request
  /// order on the one TCP stream, so the reader discards this many before
  /// delivering one — a retry after a timeout cannot be satisfied by the
  /// previous request's stale snapshot. Tracked *per opcode*: STATS,
  /// METRICS, HEALTH, and EVENTS replies interleave in their own
  /// per-opcode request order, so an abandoned request of one opcode must
  /// never eat a fresh reply of another — one shared counter would do
  /// exactly that when a caller mixes them on one connection.
  uint32_t stats_abandoned_ = 0;
  uint32_t metrics_abandoned_ = 0;
  uint32_t health_abandoned_ = 0;
  uint32_t events_abandoned_ = 0;
  WireStats stats_reply_;
  obs::MetricsSnapshot metrics_reply_;
  WireHealth health_reply_;
  EventsBatch events_reply_;
  Status broken_why_;
};

}  // namespace net
}  // namespace harmony
