#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "core/session.h"
#include "net/wire.h"

namespace harmony {
namespace net {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t max_frame_payload = kMaxFramePayload;
};

/// Blocking + callback client for the HarmonyBC wire protocol — the remote
/// mirror of Session::Submit/TxnTicket:
///
///   auto client = net::NetClient::Connect({.host = "...", .port = p});
///   TxnTicket t = (*client)->Submit({.proc_id = 1, .args = {{a, b, amt}}});
///   const TxnReceipt& r = t.Wait();       // same receipt type as in-process
///
/// One TCP connection, one server-side session. Submit stamps a
/// monotonically increasing client_seq (callers may pre-set one; a seq
/// already in flight on this connection is rejected locally), encodes the
/// request with the block codec, and frames it onto the socket. A
/// background reader thread resolves tickets from RECEIPT / ERROR frames.
///
/// Receipt fidelity: outcome/status/block_id/retries arrive exactly as the
/// server resolved them. `latency_us` is rewritten to the *wire* round trip
/// (local submit -> receipt decoded) so remote callers measure what they
/// actually experienced, clock skew excluded. Callbacks run on the reader
/// thread and must not block.
///
/// If the connection drops (server close, overload eviction, corrupt
/// stream), every in-flight ticket resolves as kDropped with the close
/// reason — receipts are never silently lost; "dropped" here means "fate
/// unknown to this client", exactly like the in-process Recover()/shutdown
/// contract.
///
/// Thread-safe: Submit/Sync/Stats may be called from any thread.
class NetClient {
 public:
  static Result<std::unique_ptr<NetClient>> Connect(
      const NetClientOptions& opts);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  TxnTicket Submit(TxnRequest req) { return Submit(std::move(req), nullptr); }
  TxnTicket Submit(TxnRequest req, ReceiptCallback cb);

  /// Waits until every receipt for Submits that returned before this call
  /// has been delivered to this client (server-side per-connection
  /// watermark + wire round trip). False on timeout or connection loss.
  bool Sync(uint64_t timeout_us);

  /// Fetches the server's STATS snapshot for this connection's session.
  Result<WireStats> Stats(uint64_t timeout_us);

  /// Local aggregate receipt counters (inflight included), mirroring
  /// Session::stats() for the remote session.
  const SessionStats& stats() const { return *stats_; }

  bool connected() const { return !broken_.load(std::memory_order_acquire); }

 private:
  NetClient() : stats_(std::make_shared<SessionStats>()) {}

  void ReaderLoop();
  /// Fails every pending ticket and sync/stats waiter with `why`.
  void BreakConnection(const Status& why);
  Status WriteFrame(Opcode op, std::string_view payload);
  void ResolveSeq(uint64_t client_seq, const TxnReceipt& receipt);

  int fd_ = -1;
  size_t max_frame_payload_ = kMaxFramePayload;
  std::shared_ptr<SessionStats> stats_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> next_sync_token_{0};
  std::atomic<bool> broken_{false};
  std::thread reader_;

  std::mutex write_mu_;       ///< serializes whole-frame socket writes
  std::mutex stats_call_mu_;  ///< one STATS exchange at a time (no corr. id)

  std::mutex mu_;  ///< pending map + sync/stats rendezvous
  std::condition_variable cv_;
  struct PendingEntry {
    std::shared_ptr<PendingTxn> entry;
    uint64_t send_time_us = 0;
  };
  std::unordered_map<uint64_t, PendingEntry> pending_;  ///< by client_seq
  std::unordered_set<uint64_t> acked_syncs_;
  bool stats_ready_ = false;
  /// STATS requests whose caller gave up (timeout): replies arrive in
  /// request order on the one TCP stream, so the reader discards this many
  /// before delivering one — a retry after a timeout cannot be satisfied
  /// by the previous request's stale snapshot.
  uint32_t stats_abandoned_ = 0;
  WireStats stats_reply_;
  Status broken_why_;
};

}  // namespace net
}  // namespace harmony
