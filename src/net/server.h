#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/harmonybc.h"
#include "net/wire.h"

namespace harmony {

namespace repl {
class Replicator;
}

namespace net {

struct NetServerOptions {
  std::string bind_addr = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = kernel-assigned; read it back via port()
  /// Acceptor/reactor threads. Each runs its own epoll loop; accepted
  /// connections are dealt round-robin across them.
  size_t reactor_threads = 2;
  size_t max_frame_payload = kMaxFramePayload;
  /// Per-connection bound on queued outbound bytes (receipts the client has
  /// not read yet). A push past this marks the consumer too slow: the queue
  /// is sealed with one ERROR{overloaded} frame and the connection closes
  /// once it flushes — bounded memory, never a silent drop on a live
  /// connection.
  size_t max_write_queue_bytes = 4u << 20;
  /// Stop() waits this long for in-flight receipts to resolve and flush
  /// before tearing connections down.
  uint64_t drain_timeout_us = 10'000'000;
  /// Non-empty = this node is a replication follower fronting no ingress:
  /// SUBMIT/BATCH_SUBMIT are answered with a connection-terminal
  /// ERROR{not_supported, "not leader; redirect to <addr>"} so clients
  /// re-dial the leader (docs/REPLICATION.md).
  std::string redirect_addr;
  /// Name this node reports in HEALTH replies (docs/OBSERVABILITY.md).
  std::string node_name;
};

/// Whole-server counters (relaxed; monotonic).
struct NetServerStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> submits{0};            ///< txns (batched included)
  std::atomic<uint64_t> batch_submits{0};      ///< BATCH_SUBMIT frames in
  std::atomic<uint64_t> receipts{0};
  std::atomic<uint64_t> batch_receipts{0};     ///< BATCH_RECEIPT frames out
  std::atomic<uint64_t> busy_errors{0};        ///< ERROR{busy} sent
  std::atomic<uint64_t> overloaded_closes{0};  ///< write queue overflow
  std::atomic<uint64_t> corrupt_closes{0};     ///< bad frames / protocol
};

/// Epoll-based TCP frontend over the session API.
///
/// Threading model (docs/NET.md has the full contract):
///  - `reactor_threads` event loops; the listen socket lives on reactor 0
///    and accepted connections are assigned round-robin. Each connection is
///    owned by exactly one reactor: all reads, frame dispatch, epoll
///    re-arming, and the final close happen on that thread.
///  - Each connection gets its own HarmonyBC Session. SUBMIT frames are
///    decoded and pushed through Session::Submit in completion-callback
///    mode; the receipt callback — running on the replica's commit thread
///    (or inline on the reactor for synchronous rejections) — encodes the
///    RECEIPT/ERROR frame into the connection's bounded write queue and
///    wakes the owning reactor via its eventfd. The queue mutex is the only
///    cross-thread touch point per connection.
///  - Busy rejections (session flow-control cap, admission rate limiting,
///    mempool backpressure) are mapped to ERROR{busy} frames scoped to the
///    submit's client_seq; every other outcome ships as a full RECEIPT.
///
/// Shutdown: Stop() parks all reads, closes the listener, then drains via
/// the completion watermark (HarmonyBC::Sync) so every admitted transaction
/// resolves, waits for per-connection write queues to flush (bounded by
/// drain_timeout_us), and only then tears the reactors down — no receipt
/// for an admitted transaction is silently dropped on a clean shutdown.
///
/// Receipt callbacks registered with the session API may outlive Stop()
/// only until the HarmonyBC resolves them, so destroy the NetServer before
/// the HarmonyBC it fronts; the callbacks themselves hold no raw NetServer
/// pointer (only weak connection references and shared stats), which makes
/// that ordering sufficient rather than load-bearing.
class NetServer {
 public:
  NetServer(HarmonyBC* db, NetServerOptions opts);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  Status Start();
  void Stop();

  /// Wires the leader's replicator in (before Start): REPL_JOIN frames
  /// register their connection as a replication peer, REPLICATE_ACK frames
  /// feed its ack tracking, and peer close unregisters. Without one, every
  /// replication opcode is a protocol violation.
  void SetReplicator(repl::Replicator* r) { replicator_ = r; }

  /// Bound port (after Start); useful with port = 0.
  uint16_t port() const { return port_; }

  const NetServerStats& stats() const { return *stats_; }
  size_t open_connections() const;

 private:
  struct Reactor;

  struct Conn {
    int fd = -1;
    /// Kept as shared_ptrs so a receipt callback that locked this Conn can
    /// finish (queue mutex, eventfd wake, stats bumps) even while the
    /// NetServer is tearing down.
    std::shared_ptr<Reactor> owner;
    std::shared_ptr<NetServerStats> srv_stats;
    size_t wq_cap = 0;
    std::unique_ptr<Session> session;
    FrameReassembler reasm;
    /// Transactions submitted on this connection (owning reactor only; a
    /// BATCH_SUBMIT counts each txn it carries).
    std::atomic<uint64_t> submitted{0};
    /// Receipts resolved; incremented under mu so SYNC-ack registration
    /// cannot miss the catch-up.
    std::atomic<uint64_t> resolved{0};
    /// Set (once) when the client sends its first BATCH_SUBMIT: from then
    /// on receipts coalesce into BATCH_RECEIPT frames packed at flush time.
    std::atomic<bool> batch_mode{false};
    /// Set when the connection sent REPL_JOIN (owning reactor only): acks
    /// route to the replicator and close unregisters the peer.
    bool is_repl_peer = false;
    std::string peer_node;

    /// The server's net.flush_us histogram when txn tracing is on, else
    /// null. Set at accept, read under mu (raw pointer into the fronted
    /// HarmonyBC's registry, which outlives the server).
    obs::LatencyHistogram* flush_hist = nullptr;
    /// The fronted HarmonyBC's event log. Set at accept (same lifetime
    /// argument as flush_hist) so the static overload-seal path can emit
    /// an overload_seal event without a NetServer pointer.
    obs::EventLog* events = nullptr;

    // Write side — shared between the owning reactor and receipt callbacks.
    std::mutex mu;
    std::deque<std::string> outq;
    /// Enqueue timestamps, in lockstep with outq (0 = tracing off): each
    /// fully-sent frame records enqueue -> socket write as net.flush_us.
    std::deque<uint64_t> outq_stamps;
    size_t out_bytes = 0;
    size_t out_off = 0;  ///< partial-write offset into outq.front()
    /// Coalescing buffer (batch mode): length-prefixed receipt entries
    /// appended by receipt callbacks, packed into one or more BATCH_RECEIPT
    /// frames by the owning reactor's next flush. Counted against wq_cap.
    std::string batch_entries;
    uint32_t batch_count = 0;
    std::vector<std::pair<uint64_t, uint64_t>> pending_syncs;  ///< (wm, token)
    bool want_write = false;  ///< EPOLLOUT armed
    bool close_after_flush = false;
    bool overloaded = false;
    bool closed = false;  ///< fd closed; drop further pushes
  };

  struct Reactor {
    ~Reactor();
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: cross-thread "this reactor has work"
    std::thread thread;
    std::mutex mu;  ///< guards conns + incoming + dirty
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    std::vector<std::shared_ptr<Conn>> incoming;  ///< accepted, not yet added
    /// Connections with queued writes. Weak on purpose: a receipt callback
    /// racing Stop() may push here after the reactor was torn down, and a
    /// strong ref would close the Conn::owner ↔ Reactor::dirty cycle into
    /// a leak.
    std::vector<std::weak_ptr<Conn>> dirty;
  };

  void ReactorLoop(size_t idx);
  void AcceptReady();
  void HandleReadable(Reactor& r, const std::shared_ptr<Conn>& conn);
  /// Dispatches one decoded frame; false = protocol error, close.
  bool Dispatch(const std::shared_ptr<Conn>& conn, Frame frame);
  /// Appends a frame to the write queue (overflow -> overloaded seal) and
  /// returns true when the owning reactor must be woken to flush it.
  /// Requires conn.mu.
  static bool EnqueueLocked(Conn& conn, Opcode op, std::string_view payload);
  /// Seals the queue with one terminal ERROR{overloaded} frame (slow
  /// consumer); the connection closes once it flushes. Requires conn.mu.
  static void SealOverloadedLocked(Conn& conn);
  /// Packs the coalescing buffer into BATCH_RECEIPT frame(s) on the write
  /// queue, splitting at kMaxBatchTxns / frame-payload bounds. Requires
  /// conn.mu.
  static void PackBatchLocked(Conn& conn);
  void PushFrame(const std::shared_ptr<Conn>& conn, Opcode op,
                 std::string_view payload);
  /// Receipt-callback path: RECEIPT or ERROR{busy}, plus due SYNC acks.
  /// Static on purpose — must stay valid without the NetServer.
  static void PushReceipt(const std::weak_ptr<Conn>& weak,
                          const TxnReceipt& r);
  /// Writes until EAGAIN/empty; arms/disarms EPOLLOUT; closes after flush
  /// when requested. Runs on the owning reactor.
  void FlushConn(Reactor& r, const std::shared_ptr<Conn>& conn);
  void CloseConn(Reactor& r, const std::shared_ptr<Conn>& conn);
  static void Wake(Reactor& r);

  HarmonyBC* db_;
  NetServerOptions opts_;
  repl::Replicator* replicator_ = nullptr;
  /// net.redirects (docs/OBSERVABILITY.md): submits bounced with a
  /// not-leader redirect. Resolved once from the fronted registry.
  obs::Counter* c_redirects_ = nullptr;
  std::shared_ptr<NetServerStats> stats_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::shared_ptr<Reactor>> reactors_;
  std::atomic<size_t> next_reactor_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};  ///< reads parked; accept closed
};

}  // namespace net
}  // namespace harmony
