#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "chain/block.h"
#include "common/clock.h"

namespace harmony {
namespace net {

Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const NetClientOptions& opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError(std::string("socket: ") + strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    // Not a literal address — resolve it.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(opts.host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      ::close(fd);
      return Status::IOError("cannot resolve " + opts.host);
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect " + opts.host + ":" +
                               std::to_string(opts.port) + ": " +
                               strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<NetClient>(new NetClient());
  client->fd_ = fd;
  client->max_frame_payload_ = opts.max_frame_payload;
  client->batch_max_txns_ =
      std::min<size_t>(std::max<size_t>(1, opts.batch_max_txns),
                       kMaxBatchTxns);
  client->batch_max_delay_us_ = opts.batch_max_delay_us;
  client->reader_ = std::thread([raw = client.get()] { raw->ReaderLoop(); });
  if (client->batch_max_txns_ > 1 && client->batch_max_delay_us_ > 0) {
    client->flusher_ =
        std::thread([raw = client.get()] { raw->FlusherLoop(); });
  }
  return client;
}

NetClient::~NetClient() {
  FlushBatch();  // best effort: don't strand buffered submits
  {
    std::lock_guard<std::mutex> lk(batch_mu_);
    flusher_stop_ = true;
  }
  batch_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  BreakConnection(Status::Aborted("client closed"));
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) ::close(fd_);
}

TxnTicket NetClient::Submit(TxnRequest req, ReceiptCallback cb) {
  if (req.client_seq == 0) {
    req.client_seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  } else {
    uint64_t cur = next_seq_.load(std::memory_order_relaxed);
    while (cur < req.client_seq &&
           !next_seq_.compare_exchange_weak(cur, req.client_seq,
                                            std::memory_order_relaxed)) {
    }
  }
  const uint64_t seq = req.client_seq;
  const uint64_t now = NowMicros();
  stats_->submitted.fetch_add(1, std::memory_order_relaxed);
  stats_->inflight.fetch_add(1, std::memory_order_acq_rel);
  auto entry = std::make_shared<PendingTxn>(now, seq, std::move(cb), stats_);

  // Resolves `entry` locally without a round trip (duplicate seq, broken
  // connection). PendingTxn::Resolve releases the inflight slot.
  auto local_reject = [&](ReceiptOutcome outcome, Status why) {
    TxnRequest identity;
    identity.client_id = req.client_id;
    identity.client_seq = seq;
    ResolvePending(entry.get(), identity, outcome, std::move(why),
                   /*block_id=*/0, NowMicros());
    return TxnTicket(entry, req.client_id, seq);
  };

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (broken_.load(std::memory_order_acquire)) {
      return local_reject(ReceiptOutcome::kRejected,
                          broken_why_.ok()
                              ? Status::IOError("not connected")
                              : broken_why_);
    }
    PendingEntry pe;
    pe.entry = entry;
    pe.send_time_us = now;
    if (!pending_.emplace(seq, std::move(pe)).second) {
      return local_reject(
          ReceiptOutcome::kRejected,
          Status::InvalidArgument("duplicate client_seq " +
                                  std::to_string(seq) + " in flight"));
    }
  }

  std::string payload;
  BlockCodec::EncodeTxn(req, &payload);
  if (batch_max_txns_ > 1) {
    // Coalescing path: buffer the encoding; the ticket is already
    // registered, so a connection loss fails it like any sent submit. The
    // flusher enforces the delay bound; the size bound flushes inline.
    // Frames are only *collected* under batch_mu_ — the blocking socket
    // write (and BreakConnection, which runs user receipt callbacks) must
    // happen after the unlock, or a stalled send would wedge every
    // concurrent Submit and a callback that re-enters this client would
    // self-deadlock.
    std::string to_send[2];
    size_t n_send = 0;
    bool notify = false;
    {
      std::lock_guard<std::mutex> lk(batch_mu_);
      // Never let a batch outgrow one frame: ship what's buffered first.
      if (!batch_buf_.empty() &&
          4 + batch_buf_.size() + payload.size() > max_frame_payload_) {
        std::string buf;
        buf.swap(batch_buf_);
        to_send[n_send++] = SealBatchPayload(batch_count_, buf);
        batch_count_ = 0;
      }
      batch_buf_.append(payload);
      batch_count_++;
      if (batch_count_ == 1) {
        batch_oldest_us_ = now;
        notify = true;  // arm the flusher's delay bound
      }
      if (batch_count_ >= batch_max_txns_) {
        std::string buf;
        buf.swap(batch_buf_);
        to_send[n_send++] = SealBatchPayload(batch_count_, buf);
        batch_count_ = 0;
        notify = false;
      }
    }
    if (notify) batch_cv_.notify_one();
    for (size_t i = 0; i < n_send; i++) {
      if (Status s = WriteFrame(Opcode::kOpBatchSubmit, to_send[i]);
          !s.ok()) {
        BreakConnection(s);
        break;
      }
    }
    return TxnTicket(std::move(entry), req.client_id, seq);
  }
  if (Status s = WriteFrame(Opcode::kOpSubmit, payload); !s.ok()) {
    // The write failed mid-connection: everything in flight (this submit
    // included) is now fate-unknown.
    BreakConnection(s);
  }
  return TxnTicket(std::move(entry), req.client_id, seq);
}

void NetClient::FlushBatch() {
  std::string payload;
  {
    std::lock_guard<std::mutex> lk(batch_mu_);
    if (batch_count_ == 0) return;
    std::string buf;
    buf.swap(batch_buf_);
    payload = SealBatchPayload(batch_count_, buf);
    batch_count_ = 0;
  }
  if (Status s = WriteFrame(Opcode::kOpBatchSubmit, payload); !s.ok()) {
    BreakConnection(s);
  }
}

void NetClient::FlusherLoop() {
  std::unique_lock<std::mutex> lk(batch_mu_);
  while (!flusher_stop_) {
    if (batch_count_ == 0) {
      batch_cv_.wait(lk);
      continue;
    }
    const uint64_t now = NowMicros();
    const uint64_t deadline = batch_oldest_us_ + batch_max_delay_us_;
    if (now < deadline) {
      batch_cv_.wait_for(lk, std::chrono::microseconds(deadline - now));
      continue;
    }
    // Delay bound hit: ship the partial batch.
    std::string buf;
    buf.swap(batch_buf_);
    const std::string payload = SealBatchPayload(batch_count_, buf);
    batch_count_ = 0;
    lk.unlock();
    if (Status s = WriteFrame(Opcode::kOpBatchSubmit, payload); !s.ok()) {
      BreakConnection(s);
      return;
    }
    lk.lock();
  }
}

bool NetClient::Sync(uint64_t timeout_us) {
  // The watermark must cover every Submit that returned before this call —
  // including ones still sitting in the coalescing buffer.
  FlushBatch();
  const uint64_t token =
      next_sync_token_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string payload;
  EncodeSync(token, &payload);
  if (Status s = WriteFrame(Opcode::kOpSync, payload); !s.ok()) {
    // A partially written frame desynchronizes the stream — same terminal
    // handling as Submit().
    BreakConnection(s);
    return false;
  }
  std::unique_lock<std::mutex> lk(mu_);
  const bool acked = cv_.wait_for(
      lk, std::chrono::microseconds(timeout_us), [&] {
        return broken_.load(std::memory_order_acquire) ||
               acked_syncs_.count(token) > 0;
      });
  if (!acked || acked_syncs_.erase(token) == 0) return false;
  return true;
}

Result<WireStats> NetClient::Stats(uint64_t timeout_us) {
  // Ship buffered submits first so the snapshot reflects them.
  FlushBatch();
  // One STATS exchange at a time: the reply carries no correlation id.
  std::lock_guard<std::mutex> call_lk(stats_call_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_ready_ = false;
  }
  if (Status s = WriteFrame(Opcode::kOpStats, {}); !s.ok()) {
    BreakConnection(s);  // a half-written frame desynchronizes the stream
    return s;
  }
  std::unique_lock<std::mutex> lk(mu_);
  const bool got = cv_.wait_for(
      lk, std::chrono::microseconds(timeout_us), [&] {
        return broken_.load(std::memory_order_acquire) || stats_ready_;
      });
  if (!got || !stats_ready_) {
    // The reply may still arrive; make sure the reader throws it away
    // rather than handing it to the next Stats() call as fresh.
    stats_abandoned_++;
    return broken_.load(std::memory_order_acquire) && !broken_why_.ok()
               ? broken_why_
               : Status::Busy("STATS timed out");
  }
  return stats_reply_;
}

Result<obs::MetricsSnapshot> NetClient::Metrics(uint64_t timeout_us) {
  // Ship buffered submits first so the snapshot reflects them.
  FlushBatch();
  // One METRICS exchange at a time: the reply carries no correlation id.
  std::lock_guard<std::mutex> call_lk(metrics_call_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_ready_ = false;
  }
  if (Status s = WriteFrame(Opcode::kOpMetrics, {}); !s.ok()) {
    BreakConnection(s);  // a half-written frame desynchronizes the stream
    return s;
  }
  std::unique_lock<std::mutex> lk(mu_);
  const bool got = cv_.wait_for(
      lk, std::chrono::microseconds(timeout_us), [&] {
        return broken_.load(std::memory_order_acquire) || metrics_ready_;
      });
  if (!got || !metrics_ready_) {
    // The reply may still arrive; make sure the reader throws it away
    // rather than handing it to the next Metrics() call as fresh. This is
    // the METRICS counter on purpose — see the per-opcode note in client.h.
    metrics_abandoned_++;
    return broken_.load(std::memory_order_acquire) && !broken_why_.ok()
               ? broken_why_
               : Status::Busy("METRICS timed out");
  }
  return metrics_reply_;
}

Result<WireHealth> NetClient::Health(uint64_t timeout_us) {
  // One HEALTH exchange at a time: the reply carries no correlation id.
  std::lock_guard<std::mutex> call_lk(health_call_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    health_ready_ = false;
  }
  if (Status s = WriteFrame(Opcode::kOpHealth, {}); !s.ok()) {
    BreakConnection(s);  // a half-written frame desynchronizes the stream
    return s;
  }
  std::unique_lock<std::mutex> lk(mu_);
  const bool got = cv_.wait_for(
      lk, std::chrono::microseconds(timeout_us), [&] {
        return broken_.load(std::memory_order_acquire) || health_ready_;
      });
  if (!got || !health_ready_) {
    // The reply may still arrive; make sure the reader throws it away
    // rather than handing it to the next Health() call as fresh.
    health_abandoned_++;
    return broken_.load(std::memory_order_acquire) && !broken_why_.ok()
               ? broken_why_
               : Status::Busy("HEALTH timed out");
  }
  return health_reply_;
}

Result<NetClient::EventsBatch> NetClient::Events(uint64_t cursor,
                                                 uint64_t timeout_us) {
  // One EVENTS exchange at a time: the reply carries no correlation id.
  std::lock_guard<std::mutex> call_lk(events_call_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    events_ready_ = false;
  }
  std::string req;
  EncodeEventsReq(cursor, &req);
  if (Status s = WriteFrame(Opcode::kOpEvents, req); !s.ok()) {
    BreakConnection(s);  // a half-written frame desynchronizes the stream
    return s;
  }
  std::unique_lock<std::mutex> lk(mu_);
  const bool got = cv_.wait_for(
      lk, std::chrono::microseconds(timeout_us), [&] {
        return broken_.load(std::memory_order_acquire) || events_ready_;
      });
  if (!got || !events_ready_) {
    // The reply may still arrive; make sure the reader throws it away
    // rather than handing it to the next Events() call as fresh.
    events_abandoned_++;
    return broken_.load(std::memory_order_acquire) && !broken_why_.ok()
               ? broken_why_
               : Status::Busy("EVENTS timed out");
  }
  return std::move(events_reply_);
}

Status NetClient::WriteFrame(Opcode op, std::string_view payload) {
  const std::string frame = EncodeFrame(op, payload);
  std::lock_guard<std::mutex> lk(write_mu_);
  size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

void NetClient::ResolveSeq(uint64_t client_seq, const TxnReceipt& receipt) {
  PendingEntry pe;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = pending_.find(client_seq);
    if (it == pending_.end()) return;  // late/unknown receipt
    pe = std::move(it->second);
    pending_.erase(it);
  }
  TxnReceipt r = receipt;
  // Rewrite latency to the wire round trip this client experienced; the
  // server-side commit latency is a subset of it and lives on the server.
  const uint64_t now = NowMicros();
  r.latency_us = now > pe.send_time_us ? now - pe.send_time_us : 0;
  pe.entry->Resolve(std::move(r));
}

void NetClient::ReaderLoop() {
  FrameReassembler reasm(max_frame_payload_);
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      BreakConnection(Status::Aborted("server closed the connection"));
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      BreakConnection(
          Status::IOError(std::string("read: ") + strerror(errno)));
      return;
    }
    reasm.Feed(buf, static_cast<size_t>(n));
    for (;;) {
      Frame frame;
      const Status st = reasm.Next(&frame);
      if (st.IsNotFound()) break;
      if (!st.ok()) {
        BreakConnection(st);
        return;
      }
      switch (frame.opcode) {
        case Opcode::kOpReceipt: {
          TxnReceipt r;
          if (!DecodeReceipt(frame.payload, &r)) {
            BreakConnection(Status::Corruption("bad RECEIPT payload"));
            return;
          }
          ResolveSeq(r.client_seq, r);
          break;
        }
        case Opcode::kOpBatchReceipt: {
          std::vector<TxnReceipt> rs;
          if (!DecodeBatchReceipt(frame.payload, &rs)) {
            BreakConnection(Status::Corruption("bad BATCH_RECEIPT payload"));
            return;
          }
          // Per-txn fan-out: rejected entries (Busy included) resolve
          // exactly like a scoped ERROR would have for single submits.
          for (TxnReceipt& r : rs) ResolveSeq(r.client_seq, r);
          break;
        }
        case Opcode::kOpError: {
          WireError e;
          if (!DecodeError(frame.payload, &e)) {
            BreakConnection(Status::Corruption("bad ERROR payload"));
            return;
          }
          if (e.client_seq != 0) {
            // Scoped to one submit (flow control / admission Busy): the
            // connection lives on.
            TxnReceipt r;
            r.outcome = ReceiptOutcome::kRejected;
            r.status = WireStatus(e.code, std::move(e.message));
            r.client_seq = e.client_seq;
            ResolveSeq(e.client_seq, r);
            break;
          }
          // Connection-level: the server is about to close on us.
          BreakConnection(WireStatus(e.code, std::move(e.message)));
          return;
        }
        case Opcode::kOpSync: {
          uint64_t token = 0;
          if (!DecodeSync(frame.payload, &token)) {
            BreakConnection(Status::Corruption("bad SYNC payload"));
            return;
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            acked_syncs_.insert(token);
          }
          cv_.notify_all();
          break;
        }
        case Opcode::kOpStats: {
          WireStats s;
          if (!DecodeStats(frame.payload, &s)) {
            BreakConnection(Status::Corruption("bad STATS payload"));
            return;
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (stats_abandoned_ > 0) {
              stats_abandoned_--;  // the reply to a timed-out request
              break;
            }
            stats_reply_ = s;
            stats_ready_ = true;
          }
          cv_.notify_all();
          break;
        }
        case Opcode::kOpMetrics: {
          obs::MetricsSnapshot m;
          if (!DecodeMetrics(frame.payload, &m)) {
            BreakConnection(Status::Corruption("bad METRICS payload"));
            return;
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (metrics_abandoned_ > 0) {
              metrics_abandoned_--;  // the reply to a timed-out request
              break;
            }
            metrics_reply_ = std::move(m);
            metrics_ready_ = true;
          }
          cv_.notify_all();
          break;
        }
        case Opcode::kOpHealth: {
          WireHealth h;
          if (!DecodeHealth(frame.payload, &h)) {
            BreakConnection(Status::Corruption("bad HEALTH payload"));
            return;
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (health_abandoned_ > 0) {
              health_abandoned_--;  // the reply to a timed-out request
              break;
            }
            health_reply_ = std::move(h);
            health_ready_ = true;
          }
          cv_.notify_all();
          break;
        }
        case Opcode::kOpEvents: {
          EventsBatch b;
          if (!DecodeEvents(frame.payload, &b.next_cursor, &b.events)) {
            BreakConnection(Status::Corruption("bad EVENTS payload"));
            return;
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            if (events_abandoned_ > 0) {
              events_abandoned_--;  // the reply to a timed-out request
              break;
            }
            events_reply_ = std::move(b);
            events_ready_ = true;
          }
          cv_.notify_all();
          break;
        }
        case Opcode::kOpSubmit:
        case Opcode::kOpBatchSubmit:
        case Opcode::kOpReplJoin:
        case Opcode::kOpReplicate:
        case Opcode::kOpReplicateAck:
        case Opcode::kOpReplSnapshot:
          // Client-only requests and replication-plane frames have no
          // business arriving on a client connection.
          BreakConnection(
              Status::Corruption("server sent a client-only opcode"));
          return;
      }
    }
  }
}

void NetClient::BreakConnection(const Status& why) {
  std::unordered_map<uint64_t, PendingEntry> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (broken_.exchange(true, std::memory_order_acq_rel)) return;
    broken_why_ = why.ok() ? Status::Aborted("connection closed") : why;
    doomed.swap(pending_);
  }
  cv_.notify_all();
  // Wake the reader if it is parked in read(); also flushes the peer.
  ::shutdown(fd_, SHUT_RDWR);
  const uint64_t now = NowMicros();
  for (auto& [seq, pe] : doomed) {
    // Same contract as Recover()/shutdown in-process: dropped means "fate
    // unknown to this client", not "guaranteed not applied".
    TxnReceipt r;
    r.outcome = ReceiptOutcome::kDropped;
    r.status = broken_why_;
    r.client_seq = seq;
    r.latency_us = now > pe.send_time_us ? now - pe.send_time_us : 0;
    pe.entry->Resolve(std::move(r));
  }
}

}  // namespace net
}  // namespace harmony
