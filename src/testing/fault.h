#pragma once

#include <atomic>
#include <cstdint>

#include "common/rng.h"
#include "common/spin_lock.h"
#include "common/status.h"
#include "common/types.h"

namespace harmony {
namespace testing {

/// Counters for what the injector actually did (tests assert the degraded
/// path was genuinely exercised, not silently skipped).
struct FaultStats {
  std::atomic<uint64_t> failed_ops{0};
  std::atomic<uint64_t> delayed_ops{0};
  std::atomic<uint64_t> short_writes{0};
};

/// Deterministic disk-fault injector, consulted by DiskManager on every
/// page read / write / sync when DiskModel::fault points at one. All
/// decisions come from a seeded Rng, so a failing run reproduces from the
/// seed. Thread-safe (DiskManager I/O is concurrent up to queue_depth).
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    double fail_prob = 0;        ///< op returns IOError
    double delay_prob = 0;       ///< op stalls an extra delay_us first
    uint64_t delay_us = 1000;
    double short_write_prob = 0; ///< page write persists a prefix, then fails
    /// After this many successful writes every later write fails (0 = off)
    /// — models a device dropping out mid-run.
    uint64_t fail_writes_after = 0;
  };

  explicit FaultInjector(Options o) : o_(o), rng_(o.seed) {}

  /// Consulted before a page read. OK = proceed.
  Status OnRead();
  /// Consulted before a page write. OK = proceed; IOError = fail the op.
  /// On a short-write fault, `*persist_bytes` (of `len`) is set to the
  /// prefix the caller must still persist before returning the error.
  Status OnWrite(size_t len, size_t* persist_bytes);
  /// Consulted before a sync/flush.
  Status OnSync();

  const FaultStats& stats() const { return stats_; }

  /// Stops injecting anything (a test "heals" the device and verifies
  /// recovery); counters are preserved. Safe against in-flight I/O.
  void Heal() { healed_.store(true, std::memory_order_relaxed); }

 private:
  bool Roll(double p);
  void MaybeDelay();

  const Options o_;
  std::atomic<bool> healed_{false};
  SpinLock mu_;
  Rng rng_;
  uint64_t writes_ = 0;
  FaultStats stats_;
};

/// Deterministic network-fault plan for the analytic NetworkModel: a
/// two-sided partition (nodes below the boundary vs the rest) whose links
/// cost an extra penalty, plus uniform extra delay and seeded per-link
/// jitter. Pure function of (plan, a, b) — no hidden state — so cluster
/// simulations stay reproducible.
struct NetFaultPlan {
  /// Nodes [0, partition_boundary) are split from the rest; 0 disables.
  uint32_t partition_boundary = 0;
  uint64_t partition_penalty_us = 500'000;
  uint64_t extra_delay_us = 0;     ///< added to every non-local link
  uint64_t jitter_max_us = 0;      ///< deterministic per-link jitter bound
  uint64_t jitter_seed = 1;

  /// True when the plan's partition separates a and b — the boolean the
  /// real networked replicator needs (src/repl/replicator.cc suppresses
  /// sends across the cut entirely; a live TCP link has no "penalty" knob).
  bool Partitioned(NodeId a, NodeId b) const {
    return partition_boundary != 0 &&
           (a < partition_boundary) != (b < partition_boundary);
  }

  uint64_t AdjustOneWayUs(NodeId a, NodeId b, uint64_t base_us) const {
    if (a == b) return base_us;
    uint64_t us = base_us + extra_delay_us;
    if (Partitioned(a, b)) {
      us += partition_penalty_us;
    }
    if (jitter_max_us != 0) {
      us += Mix64(jitter_seed ^ (uint64_t{a} << 32) ^ b) % (jitter_max_us + 1);
    }
    return us;
  }
};

}  // namespace testing
}  // namespace harmony
