#include "testing/fault.h"

#include <mutex>

#include "common/clock.h"

namespace harmony {
namespace testing {

bool FaultInjector::Roll(double p) {
  if (p <= 0.0 || healed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<SpinLock> lk(mu_);
  return rng_.Chance(p);
}

void FaultInjector::MaybeDelay() {
  if (Roll(o_.delay_prob)) {
    stats_.delayed_ops.fetch_add(1, std::memory_order_relaxed);
    SimulateDelayMicros(o_.delay_us);
  }
}

Status FaultInjector::OnRead() {
  MaybeDelay();
  if (Roll(o_.fail_prob)) {
    stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected read fault");
  }
  return Status::OK();
}

Status FaultInjector::OnWrite(size_t len, size_t* persist_bytes) {
  MaybeDelay();
  uint64_t w;
  {
    std::lock_guard<SpinLock> lk(mu_);
    w = ++writes_;
  }
  if (o_.fail_writes_after != 0 && w > o_.fail_writes_after &&
      !healed_.load(std::memory_order_relaxed)) {
    stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected write fault (device dropped out)");
  }
  if (Roll(o_.short_write_prob)) {
    stats_.short_writes.fetch_add(1, std::memory_order_relaxed);
    uint64_t cut;
    {
      std::lock_guard<SpinLock> lk(mu_);
      cut = rng_.Uniform(len == 0 ? 1 : len);
    }
    *persist_bytes = static_cast<size_t>(cut);
    return Status::IOError("injected short write");
  }
  if (Roll(o_.fail_prob)) {
    stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected write fault");
  }
  return Status::OK();
}

Status FaultInjector::OnSync() {
  MaybeDelay();
  if (Roll(o_.fail_prob)) {
    stats_.failed_ops.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected sync fault");
  }
  return Status::OK();
}

}  // namespace testing
}  // namespace harmony
