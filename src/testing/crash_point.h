#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace harmony {

namespace obs {
class EventLog;
}

namespace testing {

/// Crash-point hooks for the torture runner (tools/torture.cc): named
/// points compiled into the seal / append / checkpoint / migrate paths
/// where a process death is most likely to expose a recovery bug. A point
/// is armed by the environment variable
///
///   HARMONY_CRASH="<point>:<hit>[:<frac>]"
///
/// parsed lazily on the first hit: the <hit>-th execution of <point>
/// SIGKILLs the process (kernel-delivered, no atexit, no flush — exactly
/// the crash model the recovery invariant promises to survive). <frac>
/// only applies to *.torn_write points: the caller persists that fraction
/// of its pending write before the kill, modelling a torn record.
///
/// Disarmed cost is one relaxed atomic load (the macro below), so the
/// hooks stay compiled into release builds and the torture child needs no
/// special build. Tests can arm a point in-process with a replaceable
/// handler instead of a real SIGKILL (ArmCrashPointForTest).
///
/// The catalogue (kept in sync with docs/TESTING.md and torture.cc):
inline constexpr const char* kCrashPointCatalogue[] = {
    "chain.append.before_write",    // BlockStore::Append, record not yet on disk
    "chain.append.torn_write",      // BlockStore::Append, record prefix on disk
    "chain.append.after_write",     // BlockStore::Append, record durable
    "chain.migrate.before_rename",  // BlockStore::Migrate, temp written
    "chain.migrate.after_rename",   // BlockStore::Migrate, log replaced
    "chain.truncate.before_rename", // BlockStore::TruncateBefore, temp written
    "chain.truncate.after_rename",  // BlockStore::TruncateBefore, log replaced
    "chain.manifest.before_rename", // CheckpointManifest::Write, temp written
    "replica.checkpoint.before_manifest",  // state flushed, manifest stale
    "replica.checkpoint.after_manifest",   // checkpoint fully committed
    "storage.checkpoint.after_journal",    // journal durable, pages unflushed
    "storage.flush.mid",            // BufferPool::FlushAll, partial flush
    "ingest.seal.before_deliver",   // block sealed, never delivered
    "repl.leader.before_fanout",    // block committed locally, not yet shipped
    "repl.follower.before_apply",   // REPLICATE decoded, block not yet applied
    "repl.follower.before_ack",     // block applied, ack not yet sent
};
inline constexpr size_t kNumCrashPoints =
    sizeof(kCrashPointCatalogue) / sizeof(kCrashPointCatalogue[0]);

/// True once a crash point is armed (env or test). The macro's fast path.
extern std::atomic<bool> g_crash_points_armed;

/// Slow path of HARMONY_CRASH_POINT: counts a hit of `name`; if this is the
/// scheduled hit of the armed point, kills the process (or invokes the test
/// handler) and does not return (returns, under a test handler).
void CrashPointHit(const char* name);

/// Torn-write variant: returns true when this hit of `name` is the
/// scheduled one, with `*frac` set to the fraction of the pending write to
/// persist; the caller writes that prefix and then calls CrashNow().
bool CrashPointTorn(const char* name, double* frac);

/// SIGKILLs the current process (test handler, if armed via
/// ArmCrashPointForTest, runs instead).
void CrashNow();

/// In-process arming for unit tests: `handler` runs instead of SIGKILL.
void ArmCrashPointForTest(const std::string& name, uint64_t hit,
                          std::function<void()> handler, double frac = 1.0);
void DisarmCrashPoints();

/// Structured-event sink for arming (obs/events.h): crash points are
/// process-global while event logs are per instance, so the most recently
/// opened HarmonyBC registers its log here (and clears it on destruction
/// iff still registered — a later instance's registration wins). Arming a
/// point emits a crash_point_arm event into the current sink.
void SetCrashPointEventLog(obs::EventLog* events);
/// Clears the sink iff it still points at `events` (compare-and-swap).
void ClearCrashPointEventLog(obs::EventLog* events);

/// Hits observed for `name` since arming (test introspection).
uint64_t CrashPointHits(const std::string& name);

}  // namespace testing
}  // namespace harmony

/// Marks a crash point. Disarmed cost: one relaxed load + predictable branch.
#define HARMONY_CRASH_POINT(name)                                         \
  do {                                                                    \
    if (__builtin_expect(                                                 \
            ::harmony::testing::g_crash_points_armed.load(                \
                std::memory_order_relaxed),                               \
            0)) {                                                         \
      ::harmony::testing::CrashPointHit(name);                            \
    }                                                                     \
  } while (0)
