#include "testing/crash_point.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/events.h"

namespace harmony {
namespace testing {

std::atomic<bool> g_crash_points_armed{false};

namespace {

std::atomic<obs::EventLog*> g_crash_event_log{nullptr};

/// Announces an arming into the registered sink (if any). Crash points are
/// a torture-harness facility: an armed point in a serving process is worth
/// a warning in its event stream.
void EmitArmEvent(const std::string& point, uint64_t hit) {
  if (obs::EventLog* log =
          g_crash_event_log.load(std::memory_order_acquire)) {
    log->Emit(obs::EventSeverity::kWarn, obs::EventCode::kCrashPointArm,
              point + " (hit " + std::to_string(hit) + ")");
  }
}

struct CrashState {
  std::mutex mu;
  std::string point;                 // armed point name; empty = disarmed
  uint64_t target_hit = 0;           // 1-based: kill on the N-th hit
  double frac = 1.0;                 // torn-write fraction
  std::function<void()> handler;     // test override; null = real SIGKILL
  std::unordered_map<std::string, uint64_t> hits;
  bool env_parsed = false;
};

CrashState& State() {
  static CrashState* s = new CrashState();  // leaked: survives exit paths
  return *s;
}

/// Parses HARMONY_CRASH="point:hit[:frac]" once. Malformed values disarm.
void ParseEnvLocked(CrashState& s) {
  if (s.env_parsed) return;
  s.env_parsed = true;
  const char* env = std::getenv("HARMONY_CRASH");
  if (env == nullptr || *env == '\0') return;
  const std::string spec(env);
  const size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) return;
  const size_t c2 = spec.find(':', c1 + 1);
  const std::string hit_str =
      c2 == std::string::npos ? spec.substr(c1 + 1)
                              : spec.substr(c1 + 1, c2 - c1 - 1);
  char* end = nullptr;
  const uint64_t hit = std::strtoull(hit_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || hit == 0) return;
  double frac = 1.0;
  if (c2 != std::string::npos) {
    frac = std::strtod(spec.c_str() + c2 + 1, nullptr);
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
  }
  s.point = spec.substr(0, c1);
  s.target_hit = hit;
  s.frac = frac;
  EmitArmEvent(s.point, s.target_hit);
}

void Kill(CrashState& s) {
  if (s.handler) {
    // Test mode: run the handler (under the lock; tests are single-point).
    s.handler();
    return;
  }
  // Real mode: SIGKILL ourselves — no destructors, no buffered-IO flush,
  // exactly a process crash as far as the filesystem is concerned (the
  // page cache, and therefore every completed pwrite, survives).
  ::kill(::getpid(), SIGKILL);
  // Unreachable in practice; pause until the signal lands.
  for (;;) ::pause();
}

/// Arms the fast-path flag at process start when HARMONY_CRASH is present
/// in the environment (the torture runner execs children with it set); the
/// spec itself is parsed lazily on the first hit.
struct EnvArm {
  EnvArm() {
    const char* env = std::getenv("HARMONY_CRASH");
    if (env != nullptr && *env != '\0') {
      g_crash_points_armed.store(true, std::memory_order_relaxed);
    }
  }
} g_env_arm;

}  // namespace

void CrashPointHit(const char* name) {
  CrashState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  ParseEnvLocked(s);
  if (s.point.empty() || s.point != name) return;
  const uint64_t n = ++s.hits[s.point];
  if (n == s.target_hit) Kill(s);
}

bool CrashPointTorn(const char* name, double* frac) {
  if (!g_crash_points_armed.load(std::memory_order_relaxed)) return false;
  CrashState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  ParseEnvLocked(s);
  if (s.point.empty() || s.point != name) return false;
  const uint64_t n = ++s.hits[s.point];
  if (n != s.target_hit) return false;
  *frac = s.frac;
  return true;
}

void CrashNow() {
  CrashState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  Kill(s);
}

void ArmCrashPointForTest(const std::string& name, uint64_t hit,
                          std::function<void()> handler, double frac) {
  CrashState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  s.env_parsed = true;  // never consult the environment in test mode
  s.point = name;
  s.target_hit = hit;
  s.frac = frac;
  s.handler = std::move(handler);
  s.hits.clear();
  g_crash_points_armed.store(true, std::memory_order_relaxed);
  EmitArmEvent(name, hit);
}

void DisarmCrashPoints() {
  CrashState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  s.point.clear();
  s.target_hit = 0;
  s.frac = 1.0;
  s.handler = nullptr;
  s.hits.clear();
  s.env_parsed = true;
  g_crash_points_armed.store(false, std::memory_order_relaxed);
}

void SetCrashPointEventLog(obs::EventLog* events) {
  g_crash_event_log.store(events, std::memory_order_release);
}

void ClearCrashPointEventLog(obs::EventLog* events) {
  obs::EventLog* expected = events;
  g_crash_event_log.compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
}

uint64_t CrashPointHits(const std::string& name) {
  CrashState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.hits.find(name);
  return it == s.hits.end() ? 0 : it->second;
}

}  // namespace testing
}  // namespace harmony
