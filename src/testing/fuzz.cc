#include "testing/fuzz.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/codec.h"

namespace harmony {
namespace testing {

size_t FuzzRng::SkewedSize(size_t max) {
  if (max == 0) return 0;
  switch (Index(4)) {
    case 0:
      return Index(std::min<size_t>(max, 4) + 1);
    case 1:
      return Index(std::min<size_t>(max, 64) + 1);
    case 2:
      return Index(std::min<size_t>(max, 1024) + 1);
    default:
      return Index(max + 1);
  }
}

namespace {

void PutU32At(std::string* d, size_t pos, uint32_t v) {
  if (pos + 4 > d->size()) return;
  std::memcpy(d->data() + pos, &v, 4);
}

/// A u32 value that lies about a length or count: boundary-adjacent sizes
/// that tempt off-by-one reads, and huge values that tempt unchecked
/// allocations (count bombs).
uint32_t HostileU32(FuzzRng& rng, size_t container_size) {
  switch (rng.Index(6)) {
    case 0:
      return 0;
    case 1:
      return static_cast<uint32_t>(container_size);
    case 2:
      return static_cast<uint32_t>(container_size) + 1;
    case 3:
      return static_cast<uint32_t>(container_size) - 1;  // wraps at 0
    case 4:
      return 0xFFFFFFFFu;
    default:
      return rng.U32() | (1u << rng.Index(32));
  }
}

}  // namespace

void Mutator::MutateOnce(FuzzRng& rng, std::string* data) const {
  std::string& d = *data;
  // Empty inputs can only grow.
  const size_t op = d.empty() ? 5 + rng.Index(2) : rng.Index(10);
  switch (op) {
    case 0: {  // bit flip
      const size_t i = rng.Index(d.size());
      d[i] = static_cast<char>(d[i] ^ (1u << rng.Index(8)));
      break;
    }
    case 1: {  // byte set
      d[rng.Index(d.size())] = static_cast<char>(rng.Byte());
      break;
    }
    case 2: {  // truncate
      d.resize(rng.Index(d.size() + 1));
      break;
    }
    case 3: {  // erase a chunk
      const size_t i = rng.Index(d.size());
      const size_t n = 1 + rng.SkewedSize(d.size() - i - 1);
      d.erase(i, n);
      break;
    }
    case 4: {  // duplicate a chunk in place
      const size_t i = rng.Index(d.size());
      const size_t n = 1 + rng.SkewedSize(std::min<size_t>(d.size() - i, 256) - 1);
      d.insert(i, d.substr(i, n));
      break;
    }
    case 5: {  // insert random bytes
      d.insert(rng.Index(d.size() + 1), rng.Bytes(1 + rng.SkewedSize(255)));
      break;
    }
    case 6: {  // splice from the corpus (or random bytes when empty)
      std::string donor;
      if (corpus_ != nullptr && !corpus_->empty()) {
        donor = (*corpus_)[rng.Index(corpus_->size())];
      }
      if (donor.empty()) donor = rng.Bytes(1 + rng.SkewedSize(128));
      const size_t di = rng.Index(donor.size());
      const size_t dn = 1 + rng.SkewedSize(donor.size() - di - 1);
      const size_t at = rng.Index(d.size() + 1);
      if (rng.Chance(0.5) && at < d.size()) {
        d.replace(at, std::min(dn, d.size() - at), donor.substr(di, dn));
      } else {
        d.insert(at, donor.substr(di, dn));
      }
      break;
    }
    case 7: {  // u32 length-field lie at a random aligned-ish position
      if (d.size() >= 4) {
        PutU32At(&d, rng.Index(d.size() - 3), HostileU32(rng, d.size()));
      } else {
        d[rng.Index(d.size())] = static_cast<char>(0xFF);
      }
      break;
    }
    case 8: {  // count bomb: huge u32 near the front, where counts live
      if (d.size() >= 4) {
        const size_t window = std::min<size_t>(d.size() - 3, 64);
        PutU32At(&d, rng.Index(window),
                 0x10000000u + static_cast<uint32_t>(rng.Index(0xF0000000u)));
      }
      break;
    }
    default: {  // zero run
      const size_t i = rng.Index(d.size());
      const size_t n = 1 + rng.SkewedSize(d.size() - i - 1);
      std::fill(d.begin() + static_cast<ptrdiff_t>(i),
                d.begin() + static_cast<ptrdiff_t>(i + n), '\0');
      break;
    }
  }
}

void Mutator::Mutate(FuzzRng& rng, std::string* data) const {
  const size_t rounds = 1 + rng.Index(4);
  for (size_t i = 0; i < rounds; i++) MutateOnce(rng, data);
}

std::string ReproduceHint(std::string_view tool, std::string_view target,
                          uint64_t seed, uint64_t case_index) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "reproduce: %.*s --target %.*s --seed %llu --case %llu",
                static_cast<int>(tool.size()), tool.data(),
                static_cast<int>(target.size()), target.data(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(case_index));
  return buf;
}

bool ParseHexCorpus(std::string_view text, std::string* out) {
  out->clear();
  int hi = -1;
  bool comment = false;
  for (char c : text) {
    if (c == '\n') {
      comment = false;
      continue;
    }
    if (comment) continue;
    if (c == '#') {
      comment = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') continue;
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else return false;
    if (hi < 0) {
      hi = v;
    } else {
      out->push_back(static_cast<char>((hi << 4) | v));
      hi = -1;
    }
  }
  return hi < 0;  // odd nibble count is malformed
}

size_t LoadHexCorpusDir(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t loaded = 0;
  // Deterministic order regardless of directory-entry order.
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    if (e->d_name[0] == '.') continue;
    names.emplace_back(e->d_name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    FILE* f = std::fopen((dir + "/" + name).c_str(), "rb");
    if (f == nullptr) continue;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    std::string bytes;
    if (ParseHexCorpus(text, &bytes) && !bytes.empty()) {
      out->push_back(std::move(bytes));
      loaded++;
    }
  }
  return loaded;
}

}  // namespace testing
}  // namespace harmony
