#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace harmony {
namespace testing {

/// Deterministic RNG for fuzz cases, wrapping the repo-wide xoshiro256**
/// (common/rng.h). Every fuzz target and the torture runner derive all of
/// their randomness from one of these seeded with a published case seed, so
/// any failure reproduces from the seed alone — no corpus state, no time,
/// no address-space layout leaks into the byte stream.
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : rng_(seed) {}

  uint64_t U64() { return rng_.Next(); }
  uint32_t U32() { return static_cast<uint32_t>(rng_.Next()); }
  uint8_t Byte() { return static_cast<uint8_t>(rng_.Next()); }
  /// Uniform in [0, n); n == 0 returns 0.
  size_t Index(size_t n) { return n == 0 ? 0 : rng_.Uniform(n); }
  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + rng_.Uniform(hi - lo + 1);
  }
  bool Chance(double p) { return rng_.Chance(p); }
  std::string Bytes(size_t n) {
    std::string s(n, '\0');
    for (auto& c : s) c = static_cast<char>(Byte());
    return s;
  }
  /// Size skewed toward small values (most interesting mutations are local)
  /// with an occasional large outlier, capped at `max`.
  size_t SkewedSize(size_t max);

  Rng& raw() { return rng_; }

 private:
  Rng rng_;
};

/// The per-iteration case seed: position-mixed so neighbouring iterations
/// share no stream prefix. `fuzz_harness --seed S --case K` replays exactly
/// iteration K of a `--seed S` run.
inline uint64_t CaseSeed(uint64_t run_seed, uint64_t iter) {
  return Mix64(run_seed ^ Mix64(iter + 0x9E3779B97F4A7C15ULL));
}

/// Structure-aware byte mutator shared by every fuzz target and the
/// promoted tests/formats_test.cc loops. Operations (docs/TESTING.md):
///   bit flips, byte sets, truncation, chunk erase / duplicate, random
///   insertion, splice-from-corpus, u32 length-field lies (little-endian
///   u32 rewritten to a boundary-adjacent or huge value), count bombs
///   (u32 set to huge counts), and zero runs.
/// All randomness comes from the FuzzRng, so a (seed, input) pair always
/// produces the same mutant.
class Mutator {
 public:
  /// `corpus` entries feed the splice operation; may be empty.
  explicit Mutator(const std::vector<std::string>* corpus = nullptr)
      : corpus_(corpus) {}

  /// Applies 1–4 random mutations to `data` in place.
  void Mutate(FuzzRng& rng, std::string* data) const;

  /// Applies exactly one random mutation.
  void MutateOnce(FuzzRng& rng, std::string* data) const;

 private:
  const std::vector<std::string>* corpus_;
};

/// One-line reproduction hint, printed by fuzz targets and the torture
/// runner on any failure. Keep the format stable: docs/TESTING.md documents
/// pasting it back as CLI flags.
std::string ReproduceHint(std::string_view tool, std::string_view target,
                          uint64_t seed, uint64_t case_index);

/// Parses a corpus file: hex bytes (whitespace-separated or contiguous),
/// '#' starts a comment until end of line. Returns false on malformed hex.
bool ParseHexCorpus(std::string_view text, std::string* out);

/// Loads every regular file in `dir` with ParseHexCorpus, appending to
/// `out`. Unreadable or malformed files are skipped. Returns the number of
/// entries loaded.
size_t LoadHexCorpusDir(const std::string& dir, std::vector<std::string>* out);

}  // namespace testing
}  // namespace harmony
